//! The communicator abstraction.
//!
//! This is the MPI-like surface the distributed algorithms are written
//! against: ranked point-to-point messages, tree collectives, and
//! `split`-style sub-communicators (used to form the paper's `p/c x c`
//! processor grid: one sub-communicator per *team* column and one per
//! *row*). The concrete transport in this crate is [`ThreadComm`], which
//! runs each rank as an OS thread on one machine — the substitution for the
//! MPI clusters the paper ran on (see DESIGN.md).
//!
//! [`ThreadComm`]: crate::thread_comm::ThreadComm

use std::time::Duration;

use crate::error::CommError;
use crate::stats::{CommStats, Phase};
use nbody_metrics::MetricsRecorder;
use nbody_timeline::TimelineRecorder;
use nbody_trace::Tracer;
use nbody_wireprobe::ProbeRecorder;

/// Marker for data that can travel between ranks. Blanket-implemented for
/// every cloneable `Send` type; messages are moved between threads without
/// serialization.
pub trait CommData: Clone + Send + 'static {}
impl<T: Clone + Send + 'static> CommData for T {}

/// An MPI-like communicator: a set of ranks that can exchange messages and
/// perform collectives. Ranks are local to the communicator (`0..size()`).
///
/// Semantics guaranteed by implementations:
///
/// * Point-to-point messages between a fixed (sender, receiver) pair are
///   delivered in FIFO order within one communicator.
/// * Sends are buffered (non-blocking): a ring of simultaneous
///   `send` + `recv` pairs cannot deadlock.
/// * Collectives must be entered by every rank of the communicator in the
///   same program order.
/// * `tag` values are a correctness check: receiving a message whose tag
///   differs from the expected one is a protocol violation and panics.
pub trait Communicator: Sized {
    /// This process's rank within the communicator, in `0..size()`.
    fn rank(&self) -> usize;

    /// Number of ranks in the communicator.
    fn size(&self) -> usize;

    /// Attribute subsequent operations to `phase` (see [`CommStats`]).
    fn set_phase(&self, phase: Phase);

    /// Snapshot of this rank's accumulated statistics. Statistics are shared
    /// across communicators derived from the same rank (phase attribution
    /// follows the rank, not the communicator).
    fn stats(&self) -> CommStats;

    /// This rank's wall-clock span recorder. Like [`stats`]
    /// (`Communicator::stats`), the tracer follows the rank: communicators
    /// derived by `split` share it. Disabled (a no-op handle) unless the
    /// execution was started with tracing on.
    fn tracer(&self) -> Tracer {
        Tracer::disabled()
    }

    /// This rank's metrics recorder (counters, gauges, histograms). Like
    /// the tracer, it follows the rank across `split`s, and is disabled
    /// unless the execution was started with metrics on — algorithms can
    /// record against it unconditionally.
    fn metrics(&self) -> MetricsRecorder {
        MetricsRecorder::disabled()
    }

    /// This rank's timeline recorder (step-sample series + flight-event
    /// ring). Follows the rank across `split`s like the tracer; disabled
    /// by default so plain transports stay telemetry-free.
    fn timeline(&self) -> TimelineRecorder {
        TimelineRecorder::disabled()
    }

    /// This rank's wire probe: a bounded ring of per-message transport
    /// events (send/recv/fault) for latency attribution and schedule
    /// conformance checking. Follows the rank across `split`s; disabled by
    /// default so backends without probing support conform for free.
    fn wire(&self) -> ProbeRecorder {
        ProbeRecorder::disabled()
    }

    /// Buffered send of `data` to local rank `dst`.
    fn send<T: CommData>(&self, dst: usize, tag: u64, data: &[T]);

    /// Blocking receive from local rank `src`. The next message from `src`
    /// on this communicator must carry `tag`.
    fn recv<T: CommData>(&self, src: usize, tag: u64) -> Vec<T>;

    /// Fallible send: like [`send`](Communicator::send) but reporting
    /// transport failures as [`CommError`] instead of panicking. The
    /// default delegates to the panicking path (transports without a
    /// failure model never return `Err`).
    fn try_send<T: CommData>(&self, dst: usize, tag: u64, data: &[T]) -> Result<(), CommError> {
        self.send(dst, tag, data);
        Ok(())
    }

    /// Fallible, deadline-bounded receive: like [`recv`](Communicator::recv)
    /// but returning [`CommError::Timeout`] when no matching message
    /// arrives within `timeout` — the failure-detection primitive of the
    /// recovery layer. The default delegates to the blocking path and
    /// cannot time out; transports with real failure detection override it.
    fn try_recv_timeout<T: CommData>(
        &self,
        src: usize,
        tag: u64,
        timeout: Duration,
    ) -> Result<Vec<T>, CommError> {
        let _ = timeout;
        Ok(self.recv(src, tag))
    }

    /// Fault-injection hook: drivers announce each pipeline step `s`
    /// (1-based; the skew is step 0) before communicating in it. A chaos
    /// wrapper uses this to aim scheduled faults; on the rank a kill event
    /// just felled it returns [`CommError::PeerDead`]. The default is a
    /// no-op — plain transports never fail here.
    fn fault_step(&self, step: usize) -> Result<(), CommError> {
        let _ = step;
        Ok(())
    }

    /// Fault-injection hook: clear a fired kill before a recovery retry
    /// (models the replacement process coming back up). No-op by default.
    fn fault_revive(&self) {}

    /// Combined shift step: send `data` to `dst` while receiving from `src`.
    /// Deadlock-free for arbitrary permutations because sends are buffered.
    fn sendrecv<T: CommData>(&self, dst: usize, src: usize, tag: u64, data: &[T]) -> Vec<T> {
        self.send(dst, tag, data);
        self.recv(src, tag)
    }

    /// Broadcast `buf` from `root` to all ranks (binomial tree). On entry,
    /// only `root`'s buffer contents matter; on exit every rank holds a copy.
    fn bcast<T: CommData>(&self, root: usize, buf: &mut Vec<T>);

    /// Element-wise tree reduction to `root`. Every rank contributes `buf`
    /// (all the same length); on `root`, `buf` ends up holding the combined
    /// result; other ranks' buffers are left in an unspecified combined
    /// state and should not be used. `combine` must be associative.
    fn reduce<T: CommData>(&self, root: usize, buf: &mut Vec<T>, combine: fn(&mut T, &T));

    /// [`reduce`](Communicator::reduce) followed by a broadcast, leaving the
    /// combined result on every rank.
    fn allreduce<T: CommData>(&self, buf: &mut Vec<T>, combine: fn(&mut T, &T)) {
        self.reduce(0, buf, combine);
        self.bcast(0, buf);
    }

    /// Gather each rank's `data` to `root`; returns `Some(concatenation)` in
    /// rank order on the root, `None` elsewhere.
    fn gather<T: CommData>(&self, root: usize, data: &[T]) -> Option<Vec<Vec<T>>>;

    /// Gather to rank 0 and broadcast: every rank gets every rank's data.
    fn allgather<T: CommData>(&self, data: &[T]) -> Vec<Vec<T>> {
        let mut parts = self.gather(0, data).unwrap_or_default();
        let mut lens: Vec<usize> = if self.rank() == 0 {
            parts.iter().map(Vec::len).collect()
        } else {
            Vec::new()
        };
        self.bcast(0, &mut lens);
        let mut flat: Vec<T> = if self.rank() == 0 {
            parts.drain(..).flatten().collect()
        } else {
            Vec::new()
        };
        self.bcast(0, &mut flat);
        let mut out = Vec::with_capacity(lens.len());
        let mut it = flat.into_iter();
        for len in lens {
            out.push(it.by_ref().take(len).collect());
        }
        out
    }

    /// Personalized all-to-all with variable counts: `buckets[r]` is sent
    /// to rank `r`; returns the per-source buckets received (index =
    /// source rank; `out[rank()]` is this rank's own bucket, moved, not
    /// copied). The workhorse of spatial re-assignment.
    fn alltoallv<T: CommData>(&self, mut buckets: Vec<Vec<T>>) -> Vec<Vec<T>> {
        let p = self.size();
        let me = self.rank();
        assert_eq!(buckets.len(), p, "one bucket per rank");
        let mut out: Vec<Vec<T>> = (0..p).map(|_| Vec::new()).collect();
        out[me] = std::mem::take(&mut buckets[me]);
        // Deterministic rotation: round r exchanges with me +/- r.
        const TAG_A2A: u64 = 0x6000;
        for offset in 1..p {
            let dst = (me + offset) % p;
            self.send(dst, TAG_A2A + offset as u64, &buckets[dst]);
        }
        for offset in 1..p {
            let src = (me + p - offset) % p;
            out[src] = self.recv(src, TAG_A2A + offset as u64);
        }
        out
    }

    /// Block until every rank of the communicator has arrived.
    fn barrier(&self);

    /// Partition the communicator: ranks passing the same `color` form a new
    /// communicator, ordered by `(key, old rank)`. Must be called by every
    /// rank (collective).
    fn split(&self, color: usize, key: usize) -> Self;
}

/// Element-wise sum, the combine function used for force reductions.
pub fn sum_combine<T: std::ops::AddAssign + Copy>(acc: &mut T, x: &T) {
    *acc += *x;
}
