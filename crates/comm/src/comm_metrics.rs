//! Pre-registered metric handles for the communication hot path.
//!
//! Registered once per communicator construction (world creation or
//! `split`), so recording a message is handle lookups by array index —
//! the registry itself is never touched while the algorithm runs. All
//! handles alias the rank's one [`MetricsRecorder`] shard, so traffic on
//! derived communicators lands in the same per-rank metrics.
//!
//! Metric vocabulary (all phase-labelled):
//!
//! | name                      | type      | meaning                          |
//! |---------------------------|-----------|----------------------------------|
//! | `comm_send_messages`      | counter   | point-to-point messages sent     |
//! | `comm_send_elements`      | counter   | elements in those messages       |
//! | `comm_send_bytes`         | counter   | bytes in those messages          |
//! | `comm_recv_messages`      | counter   | point-to-point messages received |
//! | `comm_recv_elements`      | counter   | elements in those messages       |
//! | `comm_recv_bytes`         | counter   | bytes in those messages          |
//! | `comm_collective_messages`| counter   | tree messages inside collectives |
//! | `comm_collective_elements`| counter   | collective payload elements      |
//! | `comm_collective_bytes`   | counter   | collective payload bytes         |
//! | `comm_message_size_bytes` | histogram | size of every message on the wire|

use nbody_metrics::{Counter, HistogramHandle, MetricsRecorder};
use nbody_trace::{Phase, ALL_PHASES, PHASE_COUNT};

/// Cached per-phase handles; see the module docs.
pub(crate) struct CommMetrics {
    send_messages: [Counter; PHASE_COUNT],
    send_elements: [Counter; PHASE_COUNT],
    send_bytes: [Counter; PHASE_COUNT],
    recv_messages: [Counter; PHASE_COUNT],
    recv_elements: [Counter; PHASE_COUNT],
    recv_bytes: [Counter; PHASE_COUNT],
    coll_messages: [Counter; PHASE_COUNT],
    coll_elements: [Counter; PHASE_COUNT],
    coll_bytes: [Counter; PHASE_COUNT],
    message_size: [HistogramHandle; PHASE_COUNT],
}

impl CommMetrics {
    pub(crate) fn new(rec: &MetricsRecorder) -> CommMetrics {
        let counter =
            |name: &'static str| std::array::from_fn(|i| rec.counter(name, Some(ALL_PHASES[i])));
        CommMetrics {
            send_messages: counter("comm_send_messages"),
            send_elements: counter("comm_send_elements"),
            send_bytes: counter("comm_send_bytes"),
            recv_messages: counter("comm_recv_messages"),
            recv_elements: counter("comm_recv_elements"),
            recv_bytes: counter("comm_recv_bytes"),
            coll_messages: counter("comm_collective_messages"),
            coll_elements: counter("comm_collective_elements"),
            coll_bytes: counter("comm_collective_bytes"),
            message_size: std::array::from_fn(|i| {
                rec.histogram("comm_message_size_bytes", Some(ALL_PHASES[i]))
            }),
        }
    }

    /// One message hit the wire: a point-to-point send when `counted`,
    /// otherwise a constituent tree message of a collective.
    pub(crate) fn on_send(&self, phase: Phase, elements: usize, bytes: usize, counted: bool) {
        let i = phase.index();
        if counted {
            self.send_messages[i].inc();
            self.send_elements[i].add(elements as u64);
            self.send_bytes[i].add(bytes as u64);
        } else {
            self.coll_messages[i].inc();
        }
        self.message_size[i].observe(bytes as u64);
    }

    /// One point-to-point message arrived and was consumed by a receive.
    /// Collective-internal receives are not routed here — their payloads
    /// are attributed by [`on_collective`](CommMetrics::on_collective).
    pub(crate) fn on_recv(&self, phase: Phase, elements: usize, bytes: usize) {
        let i = phase.index();
        self.recv_messages[i].inc();
        self.recv_elements[i].add(elements as u64);
        self.recv_bytes[i].add(bytes as u64);
    }

    /// This rank participated in a collective with the given payload.
    pub(crate) fn on_collective(&self, phase: Phase, elements: usize, bytes: usize) {
        let i = phase.index();
        self.coll_elements[i].add(elements as u64);
        self.coll_bytes[i].add(bytes as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_the_recorder_by_phase() {
        let rec = MetricsRecorder::for_rank(2);
        let m = CommMetrics::new(&rec);
        m.on_send(Phase::Shift, 10, 520, true);
        m.on_send(Phase::Shift, 10, 520, false); // collective constituent
        m.on_recv(Phase::Shift, 10, 520);
        m.on_collective(Phase::Reduce, 7, 364);
        let snap = rec.finish().unwrap();
        assert_eq!(snap.counter("comm_send_messages", Some(Phase::Shift)), 1);
        assert_eq!(snap.counter("comm_send_elements", Some(Phase::Shift)), 10);
        assert_eq!(snap.counter("comm_send_bytes", Some(Phase::Shift)), 520);
        assert_eq!(snap.counter("comm_recv_messages", Some(Phase::Shift)), 1);
        assert_eq!(snap.counter("comm_recv_bytes", Some(Phase::Shift)), 520);
        assert_eq!(
            snap.counter("comm_collective_messages", Some(Phase::Shift)),
            1
        );
        assert_eq!(
            snap.counter("comm_collective_elements", Some(Phase::Reduce)),
            7
        );
        assert_eq!(snap.counter("comm_collective_bytes", Some(Phase::Reduce)), 364);
        // Both messages appear in the size histogram.
        let h = snap
            .histogram("comm_message_size_bytes", Some(Phase::Shift))
            .unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum, 1040);
    }

    #[test]
    fn disabled_recorder_costs_nothing_and_drains_nothing() {
        let rec = MetricsRecorder::disabled();
        let m = CommMetrics::new(&rec);
        m.on_send(Phase::Shift, 10, 520, true);
        m.on_collective(Phase::Reduce, 7, 364);
        assert!(rec.finish().is_none());
    }
}
