//! Property-based tests of the threaded message-passing runtime: random
//! payloads, random routings, and random grid splits must behave like MPI.

use nbody_comm::{run_ranks, sum_combine, CommStats, Communicator, Phase, ALL_PHASES};
use proptest::prelude::*;

/// Decode one `u64` into a statistics-recording operation and apply it.
/// `blocked_secs` values are integer-valued `f64`s, so the sharded and
/// sequential sums are exactly equal regardless of addition order.
fn apply_op(stats: &mut CommStats, op: u64) {
    let phase = ALL_PHASES[(op as usize) % ALL_PHASES.len()];
    let kind = (op / 6) % 4;
    let a = ((op / 24) % 500) as usize;
    let b = ((op / 12_000) % 4_000) as usize;
    stats.set_phase(phase);
    match kind {
        0 => stats.record_send(a, b),
        1 => stats.record_collective(a, b),
        2 => stats.record_collective_message(),
        _ => stats.record_blocked(a as f64),
    }
}

proptest! {
    // Each case spawns threads; keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn merging_shards_equals_sequential_recording(
        ops in proptest::collection::vec(any::<u64>(), 0..300),
        shard_count in 1usize..8,
    ) {
        // One recorder observing every operation...
        let mut sequential = CommStats::new();
        for &op in &ops {
            apply_op(&mut sequential, op);
        }
        // ...must agree with N shards observing a round-robin partition,
        // merged in an arbitrary (here: reverse) order.
        let mut shards = vec![CommStats::new(); shard_count];
        for (i, &op) in ops.iter().enumerate() {
            apply_op(&mut shards[i % shard_count], op);
        }
        let mut merged = CommStats::new();
        for shard in shards.iter().rev() {
            merged.merge(shard);
        }
        for phase in ALL_PHASES {
            prop_assert_eq!(merged.phase(phase), sequential.phase(phase), "{:?}", phase);
        }
        prop_assert_eq!(merged.total_messages(), sequential.total_messages());
        prop_assert_eq!(merged.total_elements(), sequential.total_elements());
        prop_assert_eq!(merged.total_bytes(), sequential.total_bytes());
        prop_assert_eq!(merged.total_collectives(), sequential.total_collectives());
        // Merging must not disturb the receiving side's current phase.
        prop_assert_eq!(merged.current_phase(), Phase::Other);
    }

    #[test]
    fn bcast_delivers_arbitrary_payloads(
        p in 1usize..10,
        root_seed in any::<usize>(),
        payload in proptest::collection::vec(any::<u64>(), 0..200),
    ) {
        let root = root_seed % p;
        let expected = payload.clone();
        let out = run_ranks(p, move |comm| {
            let mut buf = if comm.rank() == root {
                payload.clone()
            } else {
                Vec::new()
            };
            comm.bcast(root, &mut buf);
            buf
        });
        for got in out {
            prop_assert_eq!(&got, &expected);
        }
    }

    #[test]
    fn reduce_equals_serial_fold(
        p in 1usize..10,
        root_seed in any::<usize>(),
        len in 0usize..50,
        seed in any::<u64>(),
    ) {
        let root = root_seed % p;
        // Deterministic per-rank data derived from (seed, rank, index).
        let data = |rank: usize, i: usize| -> u64 {
            seed.wrapping_mul(31)
                .wrapping_add(rank as u64 * 1009)
                .wrapping_add(i as u64 * 7)
                % 1_000_000
        };
        let out = run_ranks(p, move |comm| {
            let mut buf: Vec<u64> = (0..len).map(|i| data(comm.rank(), i)).collect();
            comm.reduce(root, &mut buf, sum_combine);
            (comm.rank(), buf)
        });
        let want: Vec<u64> = (0..len)
            .map(|i| (0..p).map(|r| data(r, i)).sum())
            .collect();
        let (_, got) = &out[root];
        prop_assert_eq!(got, &want);
    }

    #[test]
    fn allgather_collects_everything_in_order(
        p in 1usize..9,
        lens in proptest::collection::vec(0usize..20, 1..9),
    ) {
        let out = run_ranks(p, |comm| {
            let len = lens[comm.rank() % lens.len()];
            let mine: Vec<u64> = (0..len).map(|i| (comm.rank() * 100 + i) as u64).collect();
            comm.allgather(&mine)
        });
        for per_rank in out {
            prop_assert_eq!(per_rank.len(), p);
            for (src, block) in per_rank.iter().enumerate() {
                let len = lens[src % lens.len()];
                let want: Vec<u64> = (0..len).map(|i| (src * 100 + i) as u64).collect();
                prop_assert_eq!(block, &want);
            }
        }
    }

    #[test]
    fn alltoallv_is_a_global_permutation(
        p in 1usize..9,
        seed in any::<u64>(),
    ) {
        // Every rank distributes p tokens (one per destination, tagged with
        // src*1000+dst); afterwards the global multiset must be intact.
        let out = run_ranks(p, move |comm| {
            let buckets: Vec<Vec<u64>> = (0..p)
                .map(|dst| {
                    // Pseudo-random count 0..4 per (src,dst).
                    let k = (seed.wrapping_add((comm.rank() * p + dst) as u64 * 2654435761) >> 7) % 4;
                    (0..k).map(|i| (comm.rank() * 1000 + dst) as u64 + i * 1_000_000).collect()
                })
                .collect();
            comm.alltoallv(buckets)
        });
        // Every received token (on rank me, from src) must be tagged src*1000+me.
        for (me, received) in out.iter().enumerate() {
            for (src, bucket) in received.iter().enumerate() {
                for &tok in bucket {
                    prop_assert_eq!((tok % 1_000_000) as usize, src * 1000 + me);
                }
            }
        }
    }

    #[test]
    fn arbitrary_grid_splits_route_correctly(
        cols in 1usize..5,
        rows in 1usize..4,
    ) {
        let p = cols * rows;
        let out = run_ranks(p, move |comm| {
            let col = comm.split(comm.rank() % cols, comm.rank());
            let row = comm.split(comm.rank() / cols, comm.rank());
            // Sum world ranks along each axis.
            let mut cs = vec![comm.rank() as u64];
            col.allreduce(&mut cs, sum_combine);
            let mut rs = vec![comm.rank() as u64];
            row.allreduce(&mut rs, sum_combine);
            (cs[0], rs[0])
        });
        for (r, &(csum, rsum)) in out.iter().enumerate() {
            let col_id = r % cols;
            let row_id = r / cols;
            let want_c: u64 = (0..rows).map(|k| (k * cols + col_id) as u64).sum();
            let want_r: u64 = (0..cols).map(|k| (row_id * cols + k) as u64).sum();
            prop_assert_eq!(csum, want_c);
            prop_assert_eq!(rsum, want_r);
        }
    }
}
