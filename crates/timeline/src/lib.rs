//! Per-step timeline telemetry and an always-on flight recorder.
//!
//! Every other lens in the workspace (trace spans, metric counters, bound
//! audits, critical-path blame) reports whole-run aggregates. This crate
//! adds the *temporal* axis: how a run evolves step by step, and what the
//! last moments before a failure looked like.
//!
//! Three pieces:
//!
//! * [`StepSeries`] — a fixed-capacity per-rank store of [`StepSample`]
//!   metric deltas (bytes, waits, compute flops/nanos, particles held)
//!   taken at step boundaries. When the store fills it decimates 2:1 and
//!   doubles its sampling stride, so a bounded buffer always covers the
//!   whole run at uniform (if coarsening) resolution.
//! * [`TimelineRecorder`] / [`FlightEvent`] — an always-on, bounded
//!   per-rank ring of recent step marks plus structured events
//!   (checkpoint, fault injected, recovery attempt, resync, retry
//!   exhausted). When a run degrades to `Unrecoverable` or exhausts its
//!   retries, the rings are dumped as a JSON *postmortem bundle*
//!   ([`RunTimeline`] with a failure reason) for offline inspection.
//! * [`detect_drift`] — a rolling median/MAD detector over the step
//!   series that flags sustained shifts in load imbalance or
//!   communication fraction: the runtime sensor adaptive re-tuning
//!   (ROADMAP item 5) closes its loop on.

#![warn(missing_docs)]

mod bundle;
mod drift;
mod flight;
mod series;

pub use bundle::{MetricSeries, RankTimeline, RunTimeline, TIMELINE_SCHEMA};
pub use drift::{detect_drift, DriftConfig, DriftWindow};
pub use flight::{EventKind, FlightEvent, TimelineRecorder, DEFAULT_EVENT_CAP, DEFAULT_SERIES_CAP};
pub use series::{StepSample, StepSeries};
