//! Fixed-capacity per-step sample series with 2:1 decimation.

use nbody_trace::Json;

/// One rank's measurement deltas for a single timestep.
///
/// All byte/flop fields are *deltas over this step*, not running totals:
/// the probe that fills the series diffs the rank's counters at step
/// boundaries. Times are seconds relative to the run's shared epoch.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StepSample {
    /// Timestep index (the integrator step, 0-based).
    pub step: u32,
    /// End-of-step wall-clock time, seconds since the run epoch.
    pub t_secs: f64,
    /// Wall-clock duration of the step.
    pub dt_secs: f64,
    /// Point-to-point bytes sent during the step.
    pub send_bytes: u64,
    /// Collective payload bytes contributed during the step.
    pub coll_bytes: u64,
    /// Seconds spent blocked waiting for data during the step.
    pub blocked_secs: f64,
    /// Floating-point operations executed by the force kernel.
    pub flops: u64,
    /// Nanoseconds spent inside the force kernel.
    pub compute_nanos: u64,
    /// Particles held by the rank at the end of the step (imbalance input).
    pub particles: u64,
    /// Global total energy (kinetic + potential) after the step, as
    /// reduced by the health monitors. `0.0` when the run was not
    /// health-instrumented (the monitors never record an exact zero for a
    /// thermalized ensemble, so zero doubles as "unmeasured").
    pub energy: f64,
    /// Norm of the global total momentum after the step (health runs
    /// only; `0.0` otherwise, see [`energy`](StepSample::energy)).
    pub momentum: f64,
}

impl StepSample {
    pub(crate) fn to_json(self) -> Json {
        Json::Obj(vec![
            ("step".into(), Json::Num(self.step as f64)),
            ("t".into(), Json::Num(self.t_secs)),
            ("dt".into(), Json::Num(self.dt_secs)),
            ("send_bytes".into(), Json::Num(self.send_bytes as f64)),
            ("coll_bytes".into(), Json::Num(self.coll_bytes as f64)),
            ("blocked".into(), Json::Num(self.blocked_secs)),
            ("flops".into(), Json::Num(self.flops as f64)),
            ("compute_nanos".into(), Json::Num(self.compute_nanos as f64)),
            ("particles".into(), Json::Num(self.particles as f64)),
            ("energy".into(), Json::Num(self.energy)),
            ("momentum".into(), Json::Num(self.momentum)),
        ])
    }

    pub(crate) fn from_json(v: &Json) -> Result<StepSample, String> {
        let num = |key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("sample missing numeric '{key}'"))
        };
        // Health fields arrived after `nbody-timeline/v1` shipped: absent
        // keys parse as 0.0 ("unmeasured") so older bundles stay readable.
        let opt = |key: &str| v.get(key).and_then(Json::as_f64).unwrap_or(0.0);
        Ok(StepSample {
            step: num("step")? as u32,
            t_secs: num("t")?,
            dt_secs: num("dt")?,
            send_bytes: num("send_bytes")? as u64,
            coll_bytes: num("coll_bytes")? as u64,
            blocked_secs: num("blocked")?,
            flops: num("flops")? as u64,
            compute_nanos: num("compute_nanos")? as u64,
            particles: num("particles")? as u64,
            energy: opt("energy"),
            momentum: opt("momentum"),
        })
    }
}

/// A bounded store of [`StepSample`]s covering the whole run.
///
/// The series keeps at most `capacity` samples. While it has room, every
/// offered sample whose step index is a multiple of the current *stride*
/// is kept (the stride starts at 1, so initially everything is). When a
/// kept sample would overflow the capacity, the series decimates 2:1 —
/// dropping every other retained sample — and doubles the stride, so the
/// buffer always spans the full run at uniform spacing, trading
/// resolution for coverage as the run grows.
#[derive(Debug, Clone, PartialEq)]
pub struct StepSeries {
    cap: usize,
    stride: u32,
    samples: Vec<StepSample>,
}

impl StepSeries {
    /// An empty series holding at most `capacity` samples (>= 1).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "step series capacity must be >= 1");
        StepSeries {
            cap: capacity,
            stride: 1,
            samples: Vec::new(),
        }
    }

    /// Maximum number of retained samples.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Current sampling stride: only steps divisible by this are kept.
    pub fn stride(&self) -> u32 {
        self.stride
    }

    /// Retained samples, in step order.
    pub fn samples(&self) -> &[StepSample] {
        &self.samples
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been retained yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Offer a sample. Samples off the current stride are ignored; a
    /// sample that would overflow the capacity first triggers a 2:1
    /// decimation (which may then put the sample itself off-stride).
    pub fn push(&mut self, s: StepSample) {
        if !s.step.is_multiple_of(self.stride) {
            return;
        }
        if self.samples.len() == self.cap {
            self.decimate();
            if !s.step.is_multiple_of(self.stride) {
                return;
            }
        }
        self.samples.push(s);
    }

    /// Consume the series, returning `(stride, samples)`.
    pub fn into_parts(self) -> (u32, Vec<StepSample>) {
        (self.stride, self.samples)
    }

    fn decimate(&mut self) {
        let mut i = 0usize;
        self.samples.retain(|_| {
            let keep = i.is_multiple_of(2);
            i += 1;
            keep
        });
        self.stride = self.stride.saturating_mul(2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(step: u32) -> StepSample {
        StepSample {
            step,
            t_secs: step as f64 * 0.5,
            dt_secs: 0.5,
            send_bytes: 100 + step as u64,
            ..StepSample::default()
        }
    }

    #[test]
    fn capacity_one_keeps_a_single_sample() {
        let mut s = StepSeries::new(1);
        for step in 0..32 {
            s.push(sample(step));
            assert!(s.len() <= 1);
        }
        assert_eq!(s.len(), 1);
        assert_eq!(s.samples()[0].step, 0);
        assert!(s.stride() > 1, "stride must have grown past the overflow");
    }

    #[test]
    fn exact_capacity_keeps_everything_at_stride_one() {
        let mut s = StepSeries::new(8);
        for step in 0..8 {
            s.push(sample(step));
        }
        assert_eq!(s.len(), 8);
        assert_eq!(s.stride(), 1);
        let steps: Vec<u32> = s.samples().iter().map(|x| x.step).collect();
        assert_eq!(steps, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn triple_overflow_decimates_to_uniform_coverage() {
        let mut s = StepSeries::new(8);
        for step in 0..24 {
            s.push(sample(step));
            assert!(s.len() <= 8, "capacity must never be exceeded");
        }
        // 24 steps through an 8-slot ring: two decimations -> stride 4,
        // uniform coverage of the whole run.
        assert_eq!(s.stride(), 4);
        let steps: Vec<u32> = s.samples().iter().map(|x| x.step).collect();
        assert_eq!(steps, vec![0, 4, 8, 12, 16, 20]);
        // Sample payloads survive decimation intact.
        assert_eq!(s.samples()[1].send_bytes, 104);
    }

    #[test]
    fn off_stride_samples_are_ignored() {
        let mut s = StepSeries::new(4);
        for step in 0..8 {
            s.push(sample(step));
        }
        assert_eq!(s.stride(), 2);
        let before = s.len();
        s.push(sample(9)); // odd step, stride is 2
        assert_eq!(s.len(), before);
    }

    #[test]
    fn sample_json_round_trips() {
        let orig = StepSample {
            step: 7,
            t_secs: 1.25,
            dt_secs: 0.25,
            send_bytes: 4096,
            coll_bytes: 512,
            blocked_secs: 0.01,
            flops: 1_000_000,
            compute_nanos: 250_000,
            particles: 128,
            energy: -3.75e-2,
            momentum: 1.5e-13,
        };
        let back = StepSample::from_json(&orig.to_json()).unwrap();
        assert_eq!(back, orig);
    }

    #[test]
    fn v1_samples_without_health_fields_still_parse() {
        // A pre-health bundle sample: no `energy`/`momentum` keys.
        let orig = StepSample {
            step: 3,
            t_secs: 0.75,
            dt_secs: 0.25,
            send_bytes: 64,
            ..StepSample::default()
        };
        let json = orig.to_json();
        let stripped = match json {
            Json::Obj(fields) => Json::Obj(
                fields
                    .into_iter()
                    .filter(|(k, _)| k != "energy" && k != "momentum")
                    .collect(),
            ),
            _ => unreachable!(),
        };
        let back = StepSample::from_json(&stripped).unwrap();
        assert_eq!(back, orig, "absent health keys default to unmeasured");
    }
}
