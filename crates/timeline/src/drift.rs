//! Online drift detection over step series (rolling median / MAD).
//!
//! The detector answers one question: has a per-step metric *shifted*
//! relative to its recent history, beyond what that history's own spread
//! explains? Median and MAD (median absolute deviation) are used instead
//! of mean/stddev so a single straggler step cannot inflate the baseline
//! it is judged against — the classic robust-statistics choice.

/// Detector tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftConfig {
    /// Trailing samples forming the rolling baseline.
    pub window: usize,
    /// Flag when a value deviates from the rolling median by more than
    /// this many (MAD-derived) sigmas.
    pub nsigma: f64,
    /// Noise floor as a fraction of the median: deviations below
    /// `min_rel * |median|` never flag, however tight the MAD is. Guards
    /// against zero-variance baselines flagging on any change at all.
    pub min_rel: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            window: 16,
            nsigma: 6.0,
            min_rel: 0.05,
        }
    }
}

/// A maximal run of consecutive flagged steps.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftWindow {
    /// Which derived metric drifted (`imbalance`, `comm_fraction`, ...).
    pub metric: String,
    /// First flagged step.
    pub start_step: u32,
    /// Last flagged step.
    pub end_step: u32,
    /// Rolling median the first flagged value was judged against.
    pub baseline: f64,
    /// The flagged value of largest absolute deviation in the window.
    pub peak: f64,
}

/// Consistency factor making MAD comparable to a Gaussian sigma.
const MAD_TO_SIGMA: f64 = 1.4826;

/// Scan `values` (one per entry of `steps`, ascending) with a rolling
/// median/MAD window and return the maximal runs of flagged steps.
///
/// The first `cfg.window` samples only seed the baseline and are never
/// flagged. After a sustained shift, the window fills with post-shift
/// values and the detector re-arms at the new level — so a step-function
/// workload produces a bounded drift window around the transition, not an
/// alarm that never clears.
pub fn detect_drift(
    metric: &str,
    steps: &[u32],
    values: &[f64],
    cfg: &DriftConfig,
) -> Vec<DriftWindow> {
    assert_eq!(steps.len(), values.len(), "one value per step");
    let mut out: Vec<DriftWindow> = Vec::new();
    if cfg.window == 0 || values.len() <= cfg.window {
        return out;
    }
    let mut open: Option<DriftWindow> = None;
    let mut scratch = vec![0.0; cfg.window];
    for i in cfg.window..values.len() {
        let base = &values[i - cfg.window..i];
        scratch.copy_from_slice(base);
        let m = median(&mut scratch);
        for (d, x) in scratch.iter_mut().zip(base) {
            *d = (x - m).abs();
        }
        let mad = median(&mut scratch);
        let scale = (MAD_TO_SIGMA * mad)
            .max(cfg.min_rel * m.abs())
            .max(f64::EPSILON);
        let dev = (values[i] - m).abs();
        if dev > cfg.nsigma * scale {
            match &mut open {
                Some(w) => {
                    w.end_step = steps[i];
                    if (w.peak - w.baseline).abs() < dev {
                        w.peak = values[i];
                    }
                }
                None => {
                    open = Some(DriftWindow {
                        metric: metric.to_string(),
                        start_step: steps[i],
                        end_step: steps[i],
                        baseline: m,
                        peak: values[i],
                    });
                }
            }
        } else if let Some(w) = open.take() {
            out.push(w);
        }
    }
    if let Some(w) = open.take() {
        out.push(w);
    }
    out
}

fn median(xs: &mut [f64]) -> f64 {
    // `total_cmp`, not `partial_cmp(..).unwrap()`: a NaN sample (e.g. a
    // 0/0 derived metric from a rank that recorded nothing) must not
    // panic the detector. NaNs sort to the ends under the IEEE total
    // order, leaving the median of the finite bulk intact.
    xs.sort_by(|a, b| a.total_cmp(b));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        0.5 * (xs[n / 2 - 1] + xs[n / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic multiplicative jitter in roughly ±1.5%.
    fn jitter(seed: &mut u64) -> f64 {
        // splitmix64 step, mapped to [0.985, 1.015).
        *seed = seed.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        0.985 + (z >> 11) as f64 / (1u64 << 53) as f64 * 0.03
    }

    #[test]
    fn step_function_is_flagged_once_around_the_transition() {
        let mut seed = 7;
        let steps: Vec<u32> = (0..80).collect();
        let values: Vec<f64> = steps
            .iter()
            .map(|&s| if s < 40 { 1.0 } else { 3.0 } * jitter(&mut seed))
            .collect();
        let windows = detect_drift("imbalance", &steps, &values, &DriftConfig::default());
        assert_eq!(windows.len(), 1, "exactly one drift window: {windows:?}");
        let w = &windows[0];
        assert_eq!(w.metric, "imbalance");
        assert_eq!(w.start_step, 40, "flag fires at the transition");
        assert!(
            w.end_step < 40 + 16 + 2,
            "alarm clears once the window re-fills at the new level"
        );
        assert!((w.baseline - 1.0).abs() < 0.1);
        assert!((w.peak - 3.0).abs() < 0.2);
    }

    #[test]
    fn stationary_series_stays_quiet() {
        let mut seed = 42;
        let steps: Vec<u32> = (0..80).collect();
        let values: Vec<f64> = steps.iter().map(|_| 1.0 * jitter(&mut seed)).collect();
        let windows = detect_drift("imbalance", &steps, &values, &DriftConfig::default());
        assert!(windows.is_empty(), "no drift on stationary data: {windows:?}");
    }

    #[test]
    fn constant_series_with_noise_floor_stays_quiet() {
        // Zero MAD would make any nonzero deviation infinite-sigma; the
        // min_rel floor keeps sub-5% wiggles quiet.
        let steps: Vec<u32> = (0..40).collect();
        let mut values = vec![2.0; 40];
        values[30] = 2.05; // 2.5% deviation, below the 5% floor * 6 sigma
        let windows = detect_drift("comm_fraction", &steps, &values, &DriftConfig::default());
        assert!(windows.is_empty());
    }

    #[test]
    fn nan_samples_do_not_panic_and_real_shifts_still_flag() {
        // Regression: `partial_cmp(..).unwrap()` in the rolling median
        // panicked on NaN input. NaNs must be survivable — they appear
        // when a derived metric divides by a zero denominator — and must
        // not suppress detection of a genuine shift elsewhere.
        let mut seed = 11;
        let steps: Vec<u32> = (0..80).collect();
        let mut values: Vec<f64> = steps
            .iter()
            .map(|&s| if s < 40 { 1.0 } else { 3.0 } * jitter(&mut seed))
            .collect();
        values[5] = f64::NAN;
        values[20] = f64::NAN;
        let windows = detect_drift("imbalance", &steps, &values, &DriftConfig::default());
        assert!(
            windows.iter().any(|w| w.start_step >= 40 && w.start_step <= 42),
            "the step shift is still flagged despite NaN history: {windows:?}"
        );

        // All-NaN input: nothing sensible to flag, but no panic either.
        let all_nan = vec![f64::NAN; 80];
        let _ = detect_drift("imbalance", &steps, &all_nan, &DriftConfig::default());
    }

    #[test]
    fn short_series_never_flags() {
        let steps: Vec<u32> = (0..10).collect();
        let values = vec![1.0; 10];
        assert!(detect_drift("x", &steps, &values, &DriftConfig::default()).is_empty());
    }

    #[test]
    fn two_separate_shifts_give_two_windows() {
        let steps: Vec<u32> = (0..120).collect();
        let values: Vec<f64> = steps
            .iter()
            .map(|&s| match s {
                0..=39 => 1.0,
                40..=79 => 4.0,
                _ => 1.0,
            })
            .collect();
        let windows = detect_drift("imbalance", &steps, &values, &DriftConfig::default());
        assert_eq!(windows.len(), 2, "{windows:?}");
        assert_eq!(windows[0].start_step, 40);
        assert_eq!(windows[1].start_step, 80);
    }
}
