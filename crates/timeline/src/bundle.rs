//! Run-level timelines and JSON postmortem bundles.

use nbody_trace::Json;

use crate::drift::{detect_drift, DriftConfig, DriftWindow};
use crate::flight::{EventKind, FlightEvent};
use crate::series::StepSample;

/// Schema tag written into every serialized timeline/postmortem bundle.
pub const TIMELINE_SCHEMA: &str = "nbody-timeline/v1";

/// One rank's drained timeline: retained step samples plus the flight ring.
#[derive(Debug, Clone, PartialEq)]
pub struct RankTimeline {
    /// World rank the data belongs to.
    pub rank: u32,
    /// Final sampling stride of the step series (1 = every step).
    pub stride: u32,
    /// Retained step samples, in step order.
    pub samples: Vec<StepSample>,
    /// Recent flight-recorder entries, oldest first.
    pub events: Vec<FlightEvent>,
    /// Events evicted from the bounded ring before the dump.
    pub dropped_events: u64,
    /// Terminal failure reason recorded on this rank, if any.
    pub failure: Option<String>,
}

/// A per-step metric series derived across ranks (input to drift detection).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSeries {
    /// Metric name (`imbalance`, `comm_fraction`, ...).
    pub metric: String,
    /// Step indices, ascending.
    pub steps: Vec<u32>,
    /// One value per step.
    pub values: Vec<f64>,
}

/// The whole run's timeline: every rank's series and flight ring, plus an
/// optional failure reason (present = this is a postmortem bundle).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunTimeline {
    /// Why the run died, when it did (`None` for a healthy run).
    pub failure: Option<String>,
    /// Per-rank timelines, ordered by rank.
    pub ranks: Vec<RankTimeline>,
}

impl RunTimeline {
    /// Assemble a run timeline from drained per-rank recorders. The run
    /// failure is the first per-rank failure reason, if any rank recorded
    /// one.
    pub fn from_ranks(mut ranks: Vec<RankTimeline>) -> RunTimeline {
        ranks.sort_by_key(|r| r.rank);
        let failure = ranks.iter().find_map(|r| r.failure.clone());
        RunTimeline { failure, ranks }
    }

    /// Stamp (or override) the run-level failure reason.
    pub fn with_failure(mut self, reason: &str) -> RunTimeline {
        self.failure = Some(reason.to_string());
        self
    }

    /// Whether this bundle records a failed run.
    pub fn is_postmortem(&self) -> bool {
        self.failure.is_some()
    }

    /// Serialize to a single JSON document.
    pub fn to_json(&self) -> String {
        let ranks = self
            .ranks
            .iter()
            .map(|r| {
                let samples = r.samples.iter().copied().map(StepSample::to_json).collect();
                let events = r
                    .events
                    .iter()
                    .map(|e| {
                        Json::Obj(vec![
                            ("t".into(), Json::Num(e.t_secs)),
                            ("kind".into(), Json::Str(e.kind.label().into())),
                            (
                                "step".into(),
                                match e.step {
                                    Some(s) => Json::Num(s as f64),
                                    None => Json::Null,
                                },
                            ),
                            ("detail".into(), Json::Str(e.detail.clone())),
                        ])
                    })
                    .collect();
                Json::Obj(vec![
                    ("rank".into(), Json::Num(r.rank as f64)),
                    ("stride".into(), Json::Num(r.stride as f64)),
                    ("dropped_events".into(), Json::Num(r.dropped_events as f64)),
                    (
                        "failure".into(),
                        match &r.failure {
                            Some(f) => Json::Str(f.clone()),
                            None => Json::Null,
                        },
                    ),
                    ("samples".into(), Json::Arr(samples)),
                    ("events".into(), Json::Arr(events)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::Str(TIMELINE_SCHEMA.into())),
            (
                "failure".into(),
                match &self.failure {
                    Some(f) => Json::Str(f.clone()),
                    None => Json::Null,
                },
            ),
            ("ranks".into(), Json::Arr(ranks)),
        ])
        .to_string()
    }

    /// Parse a document produced by [`to_json`](RunTimeline::to_json).
    pub fn parse(src: &str) -> Result<RunTimeline, String> {
        let v = Json::parse(src)?;
        let schema = v
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("timeline bundle missing 'schema'")?;
        if schema != TIMELINE_SCHEMA {
            return Err(format!("unsupported timeline schema '{schema}'"));
        }
        let failure = v.get("failure").and_then(Json::as_str).map(str::to_string);
        let mut ranks = Vec::new();
        for r in v
            .get("ranks")
            .and_then(Json::as_array)
            .ok_or("timeline bundle missing 'ranks'")?
        {
            let num = |key: &str| -> Result<f64, String> {
                r.get(key)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("rank entry missing numeric '{key}'"))
            };
            let mut samples = Vec::new();
            for s in r
                .get("samples")
                .and_then(Json::as_array)
                .ok_or("rank entry missing 'samples'")?
            {
                samples.push(StepSample::from_json(s)?);
            }
            let mut events = Vec::new();
            for e in r
                .get("events")
                .and_then(Json::as_array)
                .ok_or("rank entry missing 'events'")?
            {
                let kind_label = e
                    .get("kind")
                    .and_then(Json::as_str)
                    .ok_or("event missing 'kind'")?;
                events.push(FlightEvent {
                    t_secs: e
                        .get("t")
                        .and_then(Json::as_f64)
                        .ok_or("event missing 't'")?,
                    kind: EventKind::from_label(kind_label)
                        .ok_or_else(|| format!("unknown event kind '{kind_label}'"))?,
                    step: e.get("step").and_then(Json::as_f64).map(|s| s as u64),
                    detail: e
                        .get("detail")
                        .and_then(Json::as_str)
                        .unwrap_or_default()
                        .to_string(),
                });
            }
            ranks.push(RankTimeline {
                rank: num("rank")? as u32,
                stride: num("stride")? as u32,
                samples,
                events,
                dropped_events: num("dropped_events")? as u64,
                failure: r.get("failure").and_then(Json::as_str).map(str::to_string),
            });
        }
        Ok(RunTimeline { failure, ranks })
    }

    /// Per-step load-imbalance factor, `max(particles) / mean(particles)`
    /// across ranks that sampled the step (1.0 = perfectly balanced).
    pub fn imbalance_series(&self) -> MetricSeries {
        self.derived_series("imbalance", |per_rank| {
            let parts: Vec<f64> = per_rank.iter().map(|s| s.particles as f64).collect();
            let mean = parts.iter().sum::<f64>() / parts.len() as f64;
            let max = parts.iter().copied().fold(0.0_f64, f64::max);
            if mean > 0.0 {
                Some(max / mean)
            } else {
                None
            }
        })
    }

    /// Per-step communication fraction: total seconds ranks spent blocked
    /// waiting divided by total step wall seconds, in `[0, 1]`.
    pub fn comm_fraction_series(&self) -> MetricSeries {
        self.derived_series("comm_fraction", |per_rank| {
            let blocked: f64 = per_rank.iter().map(|s| s.blocked_secs).sum();
            let wall: f64 = per_rank.iter().map(|s| s.dt_secs).sum();
            if wall > 0.0 {
                Some((blocked / wall).clamp(0.0, 1.0))
            } else {
                None
            }
        })
    }

    /// Per-step global total energy as recorded by the health monitors.
    /// Every rank of a health run carries the same allreduced value, so
    /// the mean is the value itself; steps where no rank measured
    /// anything (energy exactly `0.0`, the "unmeasured" sentinel) are
    /// omitted, which leaves the series empty on uninstrumented runs.
    pub fn energy_series(&self) -> MetricSeries {
        self.derived_series("energy", |per_rank| {
            let measured: Vec<f64> = per_rank
                .iter()
                .map(|s| s.energy)
                .filter(|e| *e != 0.0)
                .collect();
            if measured.is_empty() {
                None
            } else {
                Some(measured.iter().sum::<f64>() / measured.len() as f64)
            }
        })
    }

    /// Per-step norm of the global total momentum (health runs only);
    /// empty when no step carries a measured energy.
    pub fn momentum_series(&self) -> MetricSeries {
        let measured: std::collections::BTreeSet<u32> =
            self.energy_series().steps.into_iter().collect();
        self.derived_series("momentum", |per_rank| {
            if per_rank.iter().any(|s| measured.contains(&s.step)) {
                let sum: f64 = per_rank.iter().map(|s| s.momentum).sum();
                Some(sum / per_rank.len() as f64)
            } else {
                None
            }
        })
    }

    /// Run the drift detector over the derived imbalance, comm-fraction,
    /// and (when measured) energy series. Energy drift is the health
    /// lens's alarm: a conservative integrator on a healthy run keeps the
    /// series flat, so a sustained shift is numerical trouble, not load.
    pub fn drift(&self, cfg: &DriftConfig) -> Vec<DriftWindow> {
        let mut out = Vec::new();
        for series in [
            self.imbalance_series(),
            self.comm_fraction_series(),
            self.energy_series(),
        ] {
            out.extend(detect_drift(
                &series.metric,
                &series.steps,
                &series.values,
                cfg,
            ));
        }
        out
    }

    fn derived_series(
        &self,
        metric: &str,
        f: impl Fn(&[StepSample]) -> Option<f64>,
    ) -> MetricSeries {
        // Group samples by step across ranks (each rank's series is
        // already step-ordered; strides can differ after decimation).
        let mut by_step: Vec<(u32, Vec<StepSample>)> = Vec::new();
        for r in &self.ranks {
            for s in &r.samples {
                match by_step.binary_search_by_key(&s.step, |(st, _)| *st) {
                    Ok(i) => by_step[i].1.push(*s),
                    Err(i) => by_step.insert(i, (s.step, vec![*s])),
                }
            }
        }
        let mut steps = Vec::new();
        let mut values = Vec::new();
        for (step, per_rank) in &by_step {
            if let Some(v) = f(per_rank) {
                steps.push(*step);
                values.push(v);
            }
        }
        MetricSeries {
            metric: metric.to_string(),
            steps,
            values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rank_tl(rank: u32, particles: &[u64], blocked: f64) -> RankTimeline {
        RankTimeline {
            rank,
            stride: 1,
            samples: particles
                .iter()
                .enumerate()
                .map(|(i, &p)| StepSample {
                    step: i as u32,
                    t_secs: i as f64,
                    dt_secs: 1.0,
                    blocked_secs: blocked,
                    particles: p,
                    ..StepSample::default()
                })
                .collect(),
            events: vec![FlightEvent {
                t_secs: 0.5,
                kind: EventKind::Checkpoint,
                step: Some(0),
                detail: format!("{} particles", particles.first().copied().unwrap_or(0)),
            }],
            dropped_events: 0,
            failure: None,
        }
    }

    #[test]
    fn json_round_trips_including_failure() {
        let tl = RunTimeline::from_ranks(vec![
            rank_tl(1, &[10, 12], 0.25),
            rank_tl(0, &[10, 8], 0.0),
        ])
        .with_failure("unrecoverable: rank 1 dead with c=1");
        let text = tl.to_json();
        let back = RunTimeline::parse(&text).unwrap();
        assert_eq!(back, tl);
        assert!(back.is_postmortem());
        assert_eq!(back.ranks[0].rank, 0, "ranks are sorted");
    }

    #[test]
    fn parse_rejects_wrong_schema_and_garbage() {
        assert!(RunTimeline::parse("{}").is_err());
        assert!(RunTimeline::parse("not json").is_err());
        let other = r#"{"schema":"something/v9","failure":null,"ranks":[]}"#;
        assert!(RunTimeline::parse(other).is_err());
    }

    #[test]
    fn imbalance_series_is_max_over_mean() {
        let tl = RunTimeline::from_ranks(vec![
            rank_tl(0, &[10, 30], 0.0),
            rank_tl(1, &[10, 10], 0.0),
        ]);
        let s = tl.imbalance_series();
        assert_eq!(s.steps, vec![0, 1]);
        assert!((s.values[0] - 1.0).abs() < 1e-12);
        assert!((s.values[1] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn comm_fraction_is_blocked_share_of_wall() {
        let tl = RunTimeline::from_ranks(vec![
            rank_tl(0, &[10], 0.5),
            rank_tl(1, &[10], 0.0),
        ]);
        let s = tl.comm_fraction_series();
        assert_eq!(s.steps, vec![0]);
        assert!((s.values[0] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn energy_series_skips_unmeasured_runs_and_feeds_drift() {
        // Uninstrumented run: all energies 0.0 -> empty series, and the
        // drift pass over it flags nothing.
        let plain = RunTimeline::from_ranks(vec![rank_tl(0, &[10, 10], 0.0)]);
        assert!(plain.energy_series().values.is_empty());
        assert!(plain.momentum_series().values.is_empty());

        // Health run: every rank carries the same allreduced energy; a
        // sustained jump past the baseline noise must be flagged.
        let ranks = (0..2)
            .map(|rank| {
                let mut rt = rank_tl(rank, &[10; 60], 0.0);
                for (i, s) in rt.samples.iter_mut().enumerate() {
                    s.energy = if i < 40 { -1.0 } else { -9.0 };
                    s.momentum = 1e-14;
                }
                rt
            })
            .collect();
        let tl = RunTimeline::from_ranks(ranks);
        let es = tl.energy_series();
        assert_eq!(es.steps.len(), 60);
        assert!((es.values[0] - -1.0).abs() < 1e-12, "mean of equal values");
        assert_eq!(tl.momentum_series().values.len(), 60);
        let windows = tl.drift(&DriftConfig::default());
        assert!(
            windows.iter().any(|w| w.metric == "energy" && w.start_step == 40),
            "energy shift is flagged: {windows:?}"
        );
    }

    #[test]
    fn from_ranks_promotes_rank_failure() {
        let mut bad = rank_tl(2, &[1], 0.0);
        bad.failure = Some("retries exhausted after 4 attempts".into());
        let tl = RunTimeline::from_ranks(vec![rank_tl(0, &[1], 0.0), bad]);
        assert_eq!(
            tl.failure.as_deref(),
            Some("retries exhausted after 4 attempts")
        );
    }
}
