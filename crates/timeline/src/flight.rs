//! The per-rank timeline recorder: step-sample series + flight ring.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;
use std::time::Instant;

use crate::bundle::RankTimeline;
use crate::series::{StepSample, StepSeries};

/// Default capacity of the per-rank step-sample series.
pub const DEFAULT_SERIES_CAP: usize = 1024;
/// Default capacity of the per-rank flight-event ring.
pub const DEFAULT_EVENT_CAP: usize = 256;

/// Kinds of structured flight-recorder events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A timestep boundary (the "recent spans" ring of the recorder).
    Step,
    /// The recovery layer checkpointed rank state before a force attempt.
    Checkpoint,
    /// A chaos wrapper injected a fault on this rank.
    FaultInjected,
    /// The recovery loop started (or classified) a force-evaluation attempt.
    RecoveryAttempt,
    /// Rank state was resynchronized from a surviving replica.
    Resync,
    /// The retry budget was exhausted; the run is giving up.
    RetryExhausted,
    /// The run degraded to an unrecoverable failure.
    Unrecoverable,
    /// A durable checkpoint bundle was written to disk.
    CheckpointPersisted,
    /// The run was restored from a durable checkpoint bundle.
    Resume,
    /// Survivors agreed to shrink the world after a column lost every replica.
    WorldShrunk,
    /// A health sentinel caught a NaN/Inf in simulation state; the detail
    /// carries the blamed (phase, particle index, field).
    NonFinite,
    /// A replica's state fingerprint disagreed with its column majority.
    ReplicaMismatch,
}

/// Labels for every event kind, in declaration order.
pub(crate) const ALL_EVENT_KINDS: [EventKind; 12] = [
    EventKind::Step,
    EventKind::Checkpoint,
    EventKind::FaultInjected,
    EventKind::RecoveryAttempt,
    EventKind::Resync,
    EventKind::RetryExhausted,
    EventKind::Unrecoverable,
    EventKind::CheckpointPersisted,
    EventKind::Resume,
    EventKind::WorldShrunk,
    EventKind::NonFinite,
    EventKind::ReplicaMismatch,
];

impl EventKind {
    /// Stable label used in postmortem bundles.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::Step => "step",
            EventKind::Checkpoint => "checkpoint",
            EventKind::FaultInjected => "fault_injected",
            EventKind::RecoveryAttempt => "recovery_attempt",
            EventKind::Resync => "resync",
            EventKind::RetryExhausted => "retry_exhausted",
            EventKind::Unrecoverable => "unrecoverable",
            EventKind::CheckpointPersisted => "checkpoint_persisted",
            EventKind::Resume => "resume",
            EventKind::WorldShrunk => "world_shrunk",
            EventKind::NonFinite => "non_finite",
            EventKind::ReplicaMismatch => "replica_mismatch",
        }
    }

    /// Inverse of [`label`](EventKind::label).
    pub fn from_label(label: &str) -> Option<EventKind> {
        ALL_EVENT_KINDS.into_iter().find(|k| k.label() == label)
    }
}

/// One entry in a rank's bounded flight ring.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightEvent {
    /// Seconds since the run epoch.
    pub t_secs: f64,
    /// What happened.
    pub kind: EventKind,
    /// The pipeline/timestep the event is attributed to, when known.
    pub step: Option<u64>,
    /// Free-form context (attempt number, peer rank, byte counts, ...).
    pub detail: String,
}

#[derive(Debug)]
struct Inner {
    rank: u32,
    epoch: Instant,
    sample_steps: bool,
    series: StepSeries,
    events: VecDeque<FlightEvent>,
    event_cap: usize,
    dropped_events: u64,
    failure: Option<String>,
}

/// Shared per-rank handle to the step series and flight ring.
///
/// Mirrors the `Tracer` / `MetricsRecorder` pattern: cheap to clone (the
/// clones share storage, so `split` communicators keep recording against
/// the same rank), and a no-op when disabled. The flight ring is meant to
/// be *always on* — both rings are bounded, so an arbitrarily long run
/// holds a fixed amount of telemetry.
#[derive(Debug, Clone, Default)]
pub struct TimelineRecorder {
    inner: Option<Rc<RefCell<Inner>>>,
}

impl TimelineRecorder {
    /// A recorder that ignores everything (serial paths, tests).
    pub fn disabled() -> TimelineRecorder {
        TimelineRecorder { inner: None }
    }

    /// A live recorder for `rank`. When `epoch` is `Some`, timestamps are
    /// relative to it and step sampling is enabled (instrumented runs);
    /// when `None`, the recorder keeps only the flight ring against a
    /// private epoch (plain runs: always-on crash forensics, no series).
    pub fn for_rank(rank: u32, epoch: Option<Instant>) -> TimelineRecorder {
        TimelineRecorder {
            inner: Some(Rc::new(RefCell::new(Inner {
                rank,
                sample_steps: epoch.is_some(),
                epoch: epoch.unwrap_or_else(Instant::now),
                series: StepSeries::new(DEFAULT_SERIES_CAP),
                events: VecDeque::new(),
                event_cap: DEFAULT_EVENT_CAP,
                dropped_events: 0,
                failure: None,
            }))),
        }
    }

    /// Whether this handle records anything at all.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether step samples are being collected (vs. flight ring only).
    pub fn wants_samples(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|i| i.borrow().sample_steps)
    }

    /// Seconds since the run epoch (0.0 when disabled).
    pub fn now_secs(&self) -> f64 {
        match &self.inner {
            Some(i) => i.borrow().epoch.elapsed().as_secs_f64(),
            None => 0.0,
        }
    }

    /// Offer a step sample to the series (ignored unless
    /// [`wants_samples`](TimelineRecorder::wants_samples)).
    pub fn push_sample(&self, s: StepSample) {
        if let Some(i) = &self.inner {
            let mut inner = i.borrow_mut();
            if inner.sample_steps {
                inner.series.push(s);
            }
        }
    }

    /// Record a structured event into the bounded flight ring.
    pub fn event(&self, kind: EventKind, step: Option<u64>, detail: &str) {
        if let Some(i) = &self.inner {
            let mut inner = i.borrow_mut();
            let t_secs = inner.epoch.elapsed().as_secs_f64();
            if inner.events.len() == inner.event_cap {
                inner.events.pop_front();
                inner.dropped_events += 1;
            }
            inner.events.push_back(FlightEvent {
                t_secs,
                kind,
                step,
                detail: detail.to_string(),
            });
        }
    }

    /// Mark a timestep boundary in the flight ring (the cheap, always-on
    /// "recent spans" record; carries no detail string).
    pub fn step_mark(&self, step: u64) {
        if let Some(i) = &self.inner {
            let mut inner = i.borrow_mut();
            let t_secs = inner.epoch.elapsed().as_secs_f64();
            if inner.events.len() == inner.event_cap {
                inner.events.pop_front();
                inner.dropped_events += 1;
            }
            inner.events.push_back(FlightEvent {
                t_secs,
                kind: EventKind::Step,
                step: Some(step),
                detail: String::new(),
            });
        }
    }

    /// Record the terminal failure reason for this rank (makes the run's
    /// drained timeline a postmortem bundle).
    pub fn mark_failure(&self, reason: &str) {
        if let Some(i) = &self.inner {
            let mut inner = i.borrow_mut();
            if inner.failure.is_none() {
                inner.failure = Some(reason.to_string());
            }
        }
    }

    /// Drain the recorder into a per-rank timeline. Returns `None` when
    /// disabled. The recorder is left empty but usable.
    pub fn finish(&self) -> Option<RankTimeline> {
        let i = self.inner.as_ref()?;
        let mut inner = i.borrow_mut();
        let cap = inner.series.capacity();
        let series = std::mem::replace(&mut inner.series, StepSeries::new(cap));
        let (stride, samples) = series.into_parts();
        Some(RankTimeline {
            rank: inner.rank,
            stride,
            samples,
            events: std::mem::take(&mut inner.events).into(),
            dropped_events: std::mem::take(&mut inner.dropped_events),
            failure: inner.failure.take(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_a_noop() {
        let tl = TimelineRecorder::disabled();
        assert!(!tl.is_enabled());
        assert!(!tl.wants_samples());
        tl.push_sample(StepSample::default());
        tl.event(EventKind::Checkpoint, Some(1), "x");
        tl.step_mark(2);
        assert!(tl.finish().is_none());
    }

    #[test]
    fn flight_ring_is_bounded_and_drops_oldest() {
        let tl = TimelineRecorder::for_rank(0, None);
        assert!(tl.is_enabled());
        assert!(!tl.wants_samples(), "plain runs keep only the flight ring");
        for step in 0..(DEFAULT_EVENT_CAP as u64 + 10) {
            tl.step_mark(step);
        }
        let rt = tl.finish().unwrap();
        assert_eq!(rt.events.len(), DEFAULT_EVENT_CAP);
        assert_eq!(rt.dropped_events, 10);
        assert_eq!(rt.events[0].step, Some(10), "oldest entries were evicted");
        assert!(rt.samples.is_empty(), "no series without an epoch");
    }

    #[test]
    fn clones_share_storage_and_finish_drains() {
        let tl = TimelineRecorder::for_rank(3, Some(Instant::now()));
        let clone = tl.clone();
        clone.event(EventKind::Resync, Some(4), "replica 1");
        tl.push_sample(StepSample {
            step: 0,
            particles: 42,
            ..StepSample::default()
        });
        clone.mark_failure("unrecoverable: rank 3");
        let rt = tl.finish().unwrap();
        assert_eq!(rt.rank, 3);
        assert_eq!(rt.events.len(), 1);
        assert_eq!(rt.events[0].kind, EventKind::Resync);
        assert_eq!(rt.samples.len(), 1);
        assert_eq!(rt.failure.as_deref(), Some("unrecoverable: rank 3"));
        // Drained: a second finish is empty.
        let again = tl.finish().unwrap();
        assert!(again.events.is_empty());
        assert!(again.samples.is_empty());
        assert!(again.failure.is_none());
    }

    #[test]
    fn event_kind_labels_round_trip() {
        for k in ALL_EVENT_KINDS {
            assert_eq!(EventKind::from_label(k.label()), Some(k));
        }
        assert_eq!(EventKind::from_label("nonsense"), None);
    }
}
