//! The end-to-end simulation driver.
//!
//! Runs multi-timestep N-body simulations with any of the paper's
//! decompositions on the threaded message-passing runtime, handling the
//! integrator split, force evaluation, boundary conditions, and (for the
//! cutoff methods) per-step spatial re-assignment. The serial path uses the
//! identical integrator/force code, so distributed trajectories can be
//! validated against it step-for-step.

use nbody_comm::{
    run_ranks, run_ranks_chaos_probed, run_ranks_chaos_traced, run_ranks_probed_traced,
    run_ranks_traced, CommStats, Communicator, EventKind, ExecutionTrace, FaultPlan,
    MetricsSnapshot, Phase, RunTimeline, WireLog,
};
use nbody_durable::{write_atomic, CheckpointBundle, ColumnBlock};
use nbody_physics::particle::reset_forces;
use nbody_physics::{Boundary, Domain, ForceLaw, Integrator, Particle};
use nbody_simhealth::{scan_forces, scan_state, HealthConfig, HealthReport, Invariants};

use crate::baselines::{
    force_decomposition_forces, naive_allgather_forces, particle_ring_forces,
};
use crate::cutoff::ca_cutoff_forces;
use crate::dist::{
    id_block_subset, spatial_subset_1d, spatial_subset_2d, team_grid_dims, team_of_x, team_of_xy,
};
use crate::grid::{GridComms, ProcGrid};
use crate::midpoint::midpoint_forces;
use crate::probe::StepProbe;
use crate::reassign::reassign_particles;
use crate::recovery::{
    ca_all_pairs_forces_ft_health, ca_cutoff_forces_ft_health, FaultError, HealthMonitor,
    RecoveryReport, RetryPolicy,
};
use crate::spatial::spatial_halo_forces;
use crate::window::{Window1d, Window2d};
use crate::window_periodic::{Window1dPeriodic, Window2dPeriodic};
use crate::{allpairs::ca_all_pairs_forces, cutoff::validate_cutoff};

/// Which parallel decomposition evaluates forces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Algorithm 1 with replication factor `c` (id-block distribution).
    CaAllPairs {
        /// Replication factor.
        c: usize,
    },
    /// Plimpton's particle decomposition (ring pipeline).
    ParticleRing,
    /// Half-ring particle decomposition exploiting Newton's third law —
    /// the symmetry optimization the paper declines (§III.C); requires a
    /// symmetric force law.
    ParticleRingSymmetric,
    /// The allgather-based naive variant (`tree` bars of Fig. 2c/2d).
    NaiveAllgather,
    /// Plimpton's force decomposition (`p` must be a perfect square).
    ForceDecomposition,
    /// Algorithm 2 with replication factor `c` (1D spatial decomposition;
    /// the force law must have a cutoff).
    Ca1dCutoff {
        /// Replication factor.
        c: usize,
    },
    /// The Fig. 5 2D generalization (2D spatial decomposition; cutoff law).
    Ca2dCutoff {
        /// Replication factor.
        c: usize,
    },
    /// Halo-exchange spatial baseline on 1D slabs (cutoff law, `c = 1`).
    SpatialHalo1d,
    /// Halo-exchange spatial baseline on a 2D grid (cutoff law, `c = 1`).
    SpatialHalo2d,
    /// The midpoint method (§II.D neutral-territory family) on 1D slabs
    /// (cutoff law, `c = 1`, half-span import region).
    Midpoint1d,
    /// The midpoint method on a 2D grid.
    Midpoint2d,
}

impl Method {
    /// The replication factor the method uses (1 for non-replicating ones).
    pub fn replication(&self) -> usize {
        match *self {
            Method::CaAllPairs { c } | Method::Ca1dCutoff { c } | Method::Ca2dCutoff { c } => c,
            _ => 1,
        }
    }

    /// Whether the method needs a force law with a finite cutoff.
    pub fn needs_cutoff(&self) -> bool {
        matches!(
            self,
            Method::Ca1dCutoff { .. }
                | Method::Ca2dCutoff { .. }
                | Method::SpatialHalo1d
                | Method::SpatialHalo2d
                | Method::Midpoint1d
                | Method::Midpoint2d
        )
    }
}

/// Simulation parameters shared by serial and distributed runs.
#[derive(Debug, Clone)]
pub struct SimConfig<F, I> {
    /// Pairwise force law.
    pub law: F,
    /// Time integrator.
    pub integrator: I,
    /// Simulation domain.
    pub domain: Domain,
    /// Boundary condition.
    pub boundary: Boundary,
    /// Timestep.
    pub dt: f64,
    /// Number of timesteps.
    pub steps: usize,
}

/// Result of a distributed run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Final particles, gathered from all owners and sorted by id.
    pub particles: Vec<Particle>,
    /// Per-world-rank communication statistics.
    pub stats: Vec<CommStats>,
}

/// Run the serial reference simulation on a copy of `initial`.
pub fn run_serial<F: ForceLaw, I: Integrator>(
    cfg: &SimConfig<F, I>,
    initial: &[Particle],
) -> Vec<Particle> {
    let mut particles = initial.to_vec();
    for _ in 0..cfg.steps {
        nbody_physics::reference::step(
            &mut particles,
            &cfg.law,
            &cfg.integrator,
            cfg.dt,
            &cfg.domain,
            cfg.boundary,
        );
    }
    particles
}

/// Run a distributed simulation of `initial` on `p` rank threads with the
/// given method, returning the gathered final state and per-rank stats.
///
/// Panics on invalid configurations (replication not dividing `p`, cutoff
/// methods without a cutoff law, `c` exceeding the interaction window).
pub fn run_distributed<F, I>(
    cfg: &SimConfig<F, I>,
    method: Method,
    p: usize,
    initial: &[Particle],
) -> RunResult
where
    F: ForceLaw + Sync,
    I: Integrator + Sync,
{
    validate_run(cfg, method);
    let out = run_ranks(p, |world| run_rank(cfg, method, world, initial));
    gather_results(out, initial.len())
}

/// [`run_distributed`] with per-rank wall-clock tracing enabled: every
/// communication phase window, blocked wait, and driver section
/// (`step` / `integrate` / `force` / `reassign`, per timestep) is recorded
/// against a shared epoch and returned merged across ranks, together with
/// the live metrics snapshot (per-rank communication counters, message-size
/// histograms, and memory high-water marks) for optimality auditing.
pub fn run_distributed_traced<F, I>(
    cfg: &SimConfig<F, I>,
    method: Method,
    p: usize,
    initial: &[Particle],
) -> (RunResult, ExecutionTrace, MetricsSnapshot)
where
    F: ForceLaw + Sync,
    I: Integrator + Sync,
{
    let (result, trace, metrics, _) = run_distributed_recorded(cfg, method, p, initial);
    (result, trace, metrics)
}

/// [`run_distributed_traced`] returning the per-step [`RunTimeline`] as
/// well: each rank samples its communication/compute deltas at every
/// timestep boundary (decimated 2:1 when the series ring fills), feeding
/// the live dashboard and the drift detector.
pub fn run_distributed_recorded<F, I>(
    cfg: &SimConfig<F, I>,
    method: Method,
    p: usize,
    initial: &[Particle],
) -> (RunResult, ExecutionTrace, MetricsSnapshot, RunTimeline)
where
    F: ForceLaw + Sync,
    I: Integrator + Sync,
{
    validate_run(cfg, method);
    let (out, trace, metrics, timeline) =
        run_ranks_traced(p, |world| run_rank(cfg, method, world, initial));
    (gather_results(out, initial.len()), trace, metrics, timeline)
}

/// [`run_distributed_recorded`] with wire probes on as well: every rank
/// records each point-to-point protocol message (send/recv, rank pair,
/// tag, phase, payload size, timestamp against the shared epoch) into a
/// bounded ring, returned merged as a [`WireLog`] for latency attribution
/// and schedule conformance checking.
pub fn run_distributed_wired<F, I>(
    cfg: &SimConfig<F, I>,
    method: Method,
    p: usize,
    initial: &[Particle],
) -> (RunResult, ExecutionTrace, MetricsSnapshot, RunTimeline, WireLog)
where
    F: ForceLaw + Sync,
    I: Integrator + Sync,
{
    validate_run(cfg, method);
    let (out, trace, metrics, timeline, wire) =
        run_ranks_probed_traced(p, |world| run_rank(cfg, method, world, initial));
    (
        gather_results(out, initial.len()),
        trace,
        metrics,
        timeline,
        wire,
    )
}

/// Result of a distributed run under fault injection.
#[derive(Debug, Clone)]
pub struct ChaosRunResult {
    /// Final particles, gathered from all owners and sorted by id.
    pub particles: Vec<Particle>,
    /// Per-world-rank communication statistics.
    pub stats: Vec<CommStats>,
    /// Live metrics snapshot (includes the `fault_*` and
    /// `recovery_bytes_total` counters).
    pub metrics: MetricsSnapshot,
    /// Per-rank wall-clock trace (chaos runs always trace, so recovery
    /// overhead shows up in `report` breakdowns).
    pub trace: ExecutionTrace,
    /// Worst per-evaluation attempt count across all ranks and timesteps
    /// (1 = no fault ever fired).
    pub max_attempts: usize,
    /// Whether any evaluation recovered from a detected fault.
    pub recovered: bool,
    /// Times the world shrank onto the survivors (degraded mode; 0 on a
    /// run that never lost a whole team column).
    pub shrinks: usize,
    /// Particles dropped with dead columns across all shrinks.
    pub lost_particles: usize,
    /// Ranks still computing when the run finished (`p` if never shrunk).
    pub final_ranks: usize,
}

/// Durable checkpointing configuration for fault-tolerant runs.
///
/// Leaders' blocks are gathered to rank 0 on the cadence and persisted as
/// one atomic `nbody-checkpoint/v1` bundle (see the `nbody-durable`
/// crate), so a killed process can restart from the last completed bundle
/// with `run --resume`.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Directory receiving `ckpt-<step>.json` bundles.
    pub dir: std::path::PathBuf,
    /// Cadence in completed global steps (must be ≥ 1).
    pub every: usize,
    /// Global steps already completed before this run (the resume offset);
    /// bundles are stamped with `base_step + local step + 1`.
    pub base_step: u64,
    /// Run-config fingerprint stamped into every bundle and checked on
    /// resume ([`nbody_durable::RunFingerprint::digest`]).
    pub fingerprint: String,
    /// Initial-condition seed recorded in the bundle.
    pub seed: u64,
    /// Kill the process (exit 137, the SIGKILL code) right after the
    /// bundle for this global step hits the disk — the crash hook behind
    /// `run --crash-at-step`, exercising the resume path end to end.
    pub crash_at: Option<u64>,
}

/// Run a distributed simulation under a fault-injection [`FaultPlan`],
/// using the fault-tolerant force drivers (the CA methods only:
/// [`Method::CaAllPairs`], [`Method::Ca1dCutoff`], [`Method::Ca2dCutoff`]).
///
/// Completes with forces bit-identical to the fault-free run whenever
/// replica recovery is possible. When whole team columns die (all `c`
/// replicas), the survivors agree to drop the lost blocks and continue on
/// a shrunken world ([`ChaosRunResult::shrinks`]); only a terminal
/// [`FaultError`] — retries exhausted, or nothing surviving anywhere —
/// fails the run, and every rank returns the same agreed verdict.
pub fn run_distributed_chaos<F, I>(
    cfg: &SimConfig<F, I>,
    method: Method,
    p: usize,
    plan: &FaultPlan,
    policy: &RetryPolicy,
    initial: &[Particle],
) -> Result<ChaosRunResult, FaultError>
where
    F: ForceLaw + Sync,
    I: Integrator + Sync,
{
    run_distributed_chaos_recorded(cfg, method, p, plan, policy, initial).0
}

/// [`run_distributed_chaos`] returning the per-step [`RunTimeline`] as
/// well. The timeline is produced **even when the run fails**: on an
/// agreed [`FaultError`] it is a postmortem bundle
/// ([`RunTimeline::is_postmortem`]) carrying each rank's final flight-ring
/// events and the failure reason marked by the recovery layer.
pub fn run_distributed_chaos_recorded<F, I>(
    cfg: &SimConfig<F, I>,
    method: Method,
    p: usize,
    plan: &FaultPlan,
    policy: &RetryPolicy,
    initial: &[Particle],
) -> (Result<ChaosRunResult, FaultError>, RunTimeline)
where
    F: ForceLaw + Sync,
    I: Integrator + Sync,
{
    run_distributed_durable(cfg, method, p, plan, policy, None, initial)
}

/// [`run_distributed_chaos_recorded`] with a durable checkpoint sink: on
/// the configured cadence the leaders' blocks are gathered and persisted
/// as an atomic versioned bundle, so the run can be killed at any point
/// and resumed from the last completed checkpoint (`run --resume`). With
/// `ckpt = None` this *is* `run_distributed_chaos_recorded`.
pub fn run_distributed_durable<F, I>(
    cfg: &SimConfig<F, I>,
    method: Method,
    p: usize,
    plan: &FaultPlan,
    policy: &RetryPolicy,
    ckpt: Option<&CheckpointConfig>,
    initial: &[Particle],
) -> (Result<ChaosRunResult, FaultError>, RunTimeline)
where
    F: ForceLaw + Sync,
    I: Integrator + Sync,
{
    let (res, timeline) = run_chaos_inner(cfg, method, p, plan, policy, ckpt, None, initial);
    (res.map(|(r, _)| r), timeline)
}

/// [`run_distributed_chaos_recorded`] with the numerical-health monitors
/// on: every step the ranks' partial kinetic/momentum/potential sums are
/// reduced once world-wide into the timeline's energy/momentum series,
/// non-finite sentinels scan forces and integrated state (aborting into a
/// postmortem with the blamed rank/particle/field on first trigger), and
/// every recovery attempt cross-checks replica state fingerprints down
/// each column (a diverged replica is re-seeded from its column majority
/// and counted in [`HealthReport::fingerprint_mismatches`]).
///
/// CA methods only, like every chaos run. On success the returned
/// [`HealthReport`] is the globally agreed verdict (identical on every
/// rank up to floating-point reduction order).
pub fn run_distributed_health<F, I>(
    cfg: &SimConfig<F, I>,
    method: Method,
    p: usize,
    plan: &FaultPlan,
    policy: &RetryPolicy,
    health: &HealthConfig,
    initial: &[Particle],
) -> (Result<(ChaosRunResult, HealthReport), FaultError>, RunTimeline)
where
    F: ForceLaw + Sync,
    I: Integrator + Sync,
{
    let (res, timeline) =
        run_chaos_inner(cfg, method, p, plan, policy, None, Some(health), initial);
    (
        res.map(|(r, h)| (r, h.expect("health runs always produce a report"))),
        timeline,
    )
}

#[allow(clippy::too_many_arguments)]
fn run_chaos_inner<F, I>(
    cfg: &SimConfig<F, I>,
    method: Method,
    p: usize,
    plan: &FaultPlan,
    policy: &RetryPolicy,
    ckpt: Option<&CheckpointConfig>,
    health: Option<&HealthConfig>,
    initial: &[Particle],
) -> (
    Result<(ChaosRunResult, Option<HealthReport>), FaultError>,
    RunTimeline,
)
where
    F: ForceLaw + Sync,
    I: Integrator + Sync,
{
    validate_run(cfg, method);
    let (out, trace, metrics, timeline) = run_ranks_chaos_traced(p, plan, |world| {
        run_rank_ft(cfg, method, world, initial, policy, ckpt, health)
    });
    (assemble_chaos(out, initial.len(), metrics, trace), timeline)
}

/// [`run_distributed_chaos_recorded`] with wire probes on: the returned
/// [`WireLog`] carries every protocol message *and* every injected fault
/// as first-class events, so a conformance check can attribute each
/// discrepancy between observed and scheduled traffic to the fault plan.
/// Like the timeline, the log is produced even when the run fails.
pub fn run_distributed_chaos_wired<F, I>(
    cfg: &SimConfig<F, I>,
    method: Method,
    p: usize,
    plan: &FaultPlan,
    policy: &RetryPolicy,
    initial: &[Particle],
) -> (Result<ChaosRunResult, FaultError>, RunTimeline, WireLog)
where
    F: ForceLaw + Sync,
    I: Integrator + Sync,
{
    validate_run(cfg, method);
    let (out, trace, metrics, timeline, wire) = run_ranks_chaos_probed(p, plan, |world| {
        run_rank_ft(cfg, method, world, initial, policy, None, None)
    });
    (
        assemble_chaos(out, initial.len(), metrics, trace).map(|(r, _)| r),
        timeline,
        wire,
    )
}

/// Merge the per-rank outcomes of a fault-tolerant run into one
/// [`ChaosRunResult`], accounting for blocks dropped by agreed shrinks:
/// the gathered survivors plus the lost particles must tile the initial
/// set exactly (sorted, unique ids), anything else is a protocol bug.
type RankOutcome =
    Result<(Vec<Particle>, CommStats, RecoveryReport, Option<HealthReport>), FaultError>;

fn assemble_chaos(
    out: Vec<RankOutcome>,
    n: usize,
    metrics: MetricsSnapshot,
    trace: ExecutionTrace,
) -> Result<(ChaosRunResult, Option<HealthReport>), FaultError> {
    let p = out.len();
    let mut particles = Vec::with_capacity(n);
    let mut stats = Vec::with_capacity(p);
    let mut max_attempts = 1;
    let mut recovered = false;
    let mut shrinks = 0;
    let mut lost_particles = 0;
    let mut final_ranks = p;
    let mut health: Option<HealthReport> = None;
    for r in out {
        let (mut ps, st, rep, hr) = r?;
        particles.append(&mut ps);
        stats.push(st);
        max_attempts = max_attempts.max(rep.attempts);
        recovered |= rep.recovered;
        // Survivors carry the cumulative loss; ranks that left early hold
        // a prefix of it, so the max is the total.
        shrinks = shrinks.max(rep.shrinks);
        lost_particles = lost_particles.max(rep.lost_particles);
        if rep.survivor_ranks > 0 {
            final_ranks = final_ranks.min(rep.survivor_ranks);
        }
        if let Some(hr) = hr {
            // The reduced invariants are agreed on every surviving rank; a
            // rank that left the world early (shrink) holds a prefix. Keep
            // the longest view and fold the counters with max so nobody's
            // tally is truncated.
            let merged = health.get_or_insert(hr);
            if hr.steps_checked > merged.steps_checked {
                let kept = *merged;
                *merged = hr;
                merged.sentinel_events = merged.sentinel_events.max(kept.sentinel_events);
                merged.fingerprint_mismatches =
                    merged.fingerprint_mismatches.max(kept.fingerprint_mismatches);
            } else {
                merged.sentinel_events = merged.sentinel_events.max(hr.sentinel_events);
                merged.fingerprint_mismatches =
                    merged.fingerprint_mismatches.max(hr.fingerprint_mismatches);
                merged.max_rel_energy_drift =
                    merged.max_rel_energy_drift.max(hr.max_rel_energy_drift);
                merged.max_momentum_norm = merged.max_momentum_norm.max(hr.max_momentum_norm);
            }
        }
    }
    particles.sort_by_key(|q| q.id);
    assert_eq!(
        particles.len() + lost_particles,
        n,
        "particles lost or duplicated in chaos run beyond the agreed shrinks"
    );
    assert!(
        particles.windows(2).all(|w| w[0].id < w[1].id),
        "duplicate particle ids in chaos run"
    );
    Ok((
        ChaosRunResult {
            particles,
            stats,
            metrics,
            trace,
            max_attempts,
            recovered,
            shrinks,
            lost_particles,
            final_ranks,
        },
        health,
    ))
}

/// Execute an agreed shrink: split the survivors off into a new world,
/// re-assemble the surviving particle set from the restored pre-force
/// checkpoints, and account for the drop. Collective over `cur` — every
/// rank calls it with the same agreed `dead_teams`. Returns `None` on
/// ranks whose team died (they leave the computation), and the survivor
/// world together with the globally shared surviving state elsewhere.
#[allow(clippy::too_many_arguments)]
fn shrink_world<C: Communicator>(
    cur: &C,
    grid: &ProcGrid,
    dead_teams: &[usize],
    was_leader: bool,
    st: &[Particle],
    live_n: &mut usize,
    agg: &mut RecoveryReport,
    step: usize,
) -> Option<(C, Vec<Particle>)> {
    let my_team = grid.team_of(cur.rank());
    let survivor = !dead_teams.contains(&my_team);
    let tl = cur.timeline();
    cur.set_phase(Phase::Recovery);
    // The split is collective and includes the ranks about to leave;
    // keying on the old rank keeps the survivors' relative order.
    let next = cur.split(usize::from(survivor), cur.rank());
    agg.shrinks += 1;
    if !survivor {
        tl.event(
            EventKind::WorldShrunk,
            Some(step as u64),
            &format!("team {my_team} lost every replica; rank leaves the world"),
        );
        return None;
    }
    // The recovery loop left the restored pre-force checkpoint on every
    // surviving-column rank, so the old leaders' copies are exactly one
    // copy of each live block.
    let contrib = if was_leader { st.to_vec() } else { Vec::new() };
    let mut full: Vec<Particle> = match next.gather(0, &contrib) {
        Some(parts) => {
            let mut all: Vec<Particle> = parts.into_iter().flatten().collect();
            all.sort_by_key(|q| q.id);
            all
        }
        None => Vec::new(),
    };
    next.bcast(0, &mut full);
    let lost = *live_n - full.len();
    *live_n = full.len();
    agg.lost_particles += lost;
    agg.survivor_ranks = next.size();
    let rec = cur.metrics();
    rec.counter("world_shrunk_total", None).inc();
    rec.counter("shrink_lost_particles_total", None)
        .add(lost as u64);
    tl.event(
        EventKind::WorldShrunk,
        Some(step as u64),
        &format!(
            "teams {dead_teams:?} lost ({lost} particles dropped); {} survivors continue",
            next.size()
        ),
    );
    Some((next, full))
}

/// Persist the leaders' blocks as one durable bundle: gathered to the
/// current world's rank 0, written atomically (temp file + rename), and
/// recorded in the flight ring and the `checkpoint_*` counters.
/// Collective over `cur`. When the crash hook matches, rank 0 exits the
/// process with the SIGKILL code right after the bundle is durable.
fn persist_checkpoint<C: Communicator>(
    cur: &C,
    grid: &ProcGrid,
    is_leader: bool,
    st: &[Particle],
    ck: &CheckpointConfig,
    global_step: u64,
) {
    cur.set_phase(Phase::Recovery);
    let contrib = if is_leader { st.to_vec() } else { Vec::new() };
    let gathered = cur.gather(0, &contrib);
    if cur.rank() != 0 {
        return;
    }
    let blocks: Vec<ColumnBlock> = gathered
        .expect("rank 0 is the gather root")
        .into_iter()
        .enumerate()
        .filter(|(r, _)| grid.row_of(*r) == 0)
        .map(|(r, particles)| ColumnBlock {
            team: grid.team_of(r),
            particles,
        })
        .collect();
    let bundle = CheckpointBundle {
        fingerprint: ck.fingerprint.clone(),
        step: global_step,
        seed: ck.seed,
        blocks,
    };
    let tl = cur.timeline();
    match write_atomic(&ck.dir, &bundle) {
        Ok((path, bytes)) => {
            tl.event(
                EventKind::CheckpointPersisted,
                Some(global_step),
                &format!("{} ({bytes} bytes)", path.display()),
            );
            let rec = cur.metrics();
            rec.counter("checkpoint_persisted_total", None).inc();
            rec.counter("checkpoint_bytes_total", None).add(bytes);
        }
        Err(e) => {
            // A failed write never takes the run down: the previous
            // bundle is still intact (atomic rename), so durability
            // degrades by one cadence interval and the run continues.
            tl.event(
                EventKind::CheckpointPersisted,
                Some(global_step),
                &format!("write failed: {e}"),
            );
            rec_failed_checkpoint(cur);
        }
    }
    if ck.crash_at == Some(global_step) {
        std::process::exit(137);
    }
}

fn rec_failed_checkpoint<C: Communicator>(cur: &C) {
    cur.metrics().counter("checkpoint_failed_total", None).inc();
}

/// Post-reduction sentinel pass: apply the seeded NaN injection (fire
/// once, on the target rank/step) and scan the freshly reduced force
/// accumulators on leaders. Returns the local blame `(rank, detail)`.
fn health_scan_forces<C: Communicator>(
    world: &C,
    hcfg: &HealthConfig,
    nan_fired: &mut bool,
    is_leader: bool,
    st: &mut [Particle],
    step: usize,
) -> Option<(usize, String)> {
    let rank = world.rank();
    if let Some((r, s)) = hcfg.injection.nan {
        if r == rank && s == step as u64 && !*nan_fired {
            *nan_fired = true;
            if let Some(q) = st.first_mut() {
                q.force.x = f64::NAN;
            }
        }
    }
    if !is_leader {
        return None;
    }
    scan_forces(st).map(|b| (rank, b.detail(rank, step as u64, "force")))
}

/// Post-integration sentinel pass over positions/velocities/masses.
fn health_scan_state<C: Communicator>(
    world: &C,
    is_leader: bool,
    st: &[Particle],
    step: usize,
) -> Option<(usize, String)> {
    if !is_leader {
        return None;
    }
    let rank = world.rank();
    scan_state(st).map(|b| (rank, b.detail(rank, step as u64, "integrate")))
}

/// The once-per-checked-step world reduction of the health monitors: one
/// sum-allreduce carries every rank's invariant partials plus its sentinel
/// flag, so the invariants and the abort decision cost a single
/// collective. Folds the agreed result into the rank's report and returns
/// `(total energy, momentum norm)`; an agreed sentinel aborts every rank
/// with the same [`FaultError::NumericalFault`]. Collective over `cur`
/// (the current, possibly shrunken, world). Attributed to
/// [`Phase::Recovery`] — health traffic is outside the paper's cost model,
/// like recovery traffic.
fn health_reduce<C: Communicator>(
    cur: &C,
    blame: Option<(usize, String)>,
    inv: Invariants,
    pe_partial: f64,
    step: usize,
    report: &mut HealthReport,
) -> Result<(f64, f64), FaultError> {
    cur.set_phase(Phase::Recovery);
    let mut buf = vec![
        inv.kinetic,
        inv.momentum_x,
        inv.momentum_y,
        pe_partial,
        if blame.is_some() { 1.0 } else { 0.0 },
        blame.as_ref().map_or(0.0, |(r, _)| (*r + 1) as f64),
    ];
    cur.allreduce(&mut buf, |a, b| *a += *b);
    let nonfinite = buf[4] as u64;
    if nonfinite > 0 {
        report.sentinel_events += nonfinite;
        let tl = cur.timeline();
        let (rank, detail) = match blame {
            Some((rank, detail)) => {
                // The catching rank writes the blamed flight event and
                // turns the timeline into a postmortem bundle.
                tl.event(EventKind::NonFinite, Some(step as u64), &detail);
                tl.mark_failure(&detail);
                (rank, detail)
            }
            None => (
                // Exact when one rank is blamed (the common case); with
                // several simultaneous blames the sum is only a hint and
                // the per-rank flight events carry the truth.
                (buf[5] as usize).saturating_sub(1),
                "non-finite state detected (see the blamed rank's flight events)".to_string(),
            ),
        };
        return Err(FaultError::NumericalFault {
            rank,
            step: step as u64,
            detail,
        });
    }
    // The CA schedules evaluate every ordered pair exactly once globally,
    // so the summed kernel harvest counts each unordered pair twice.
    let energy = buf[0] + buf[3] / 2.0;
    let momentum = (buf[1] * buf[1] + buf[2] * buf[2]).sqrt();
    report.record(energy, momentum);
    Ok((energy, momentum))
}

/// Per-rank body of a chaos run: the CA drivers with fault-tolerant force
/// evaluations (`epoch` = timestep index for tag namespacing), degraded
/// shrinking when whole columns die, and the optional durable checkpoint
/// sink on its cadence.
fn run_rank_ft<F, I, C>(
    cfg: &SimConfig<F, I>,
    method: Method,
    world: &mut C,
    initial: &[Particle],
    policy: &RetryPolicy,
    ckpt: Option<&CheckpointConfig>,
    health: Option<&HealthConfig>,
) -> Result<(Vec<Particle>, CommStats, RecoveryReport, Option<HealthReport>), FaultError>
where
    F: ForceLaw,
    I: Integrator,
    C: Communicator,
{
    let p = world.size();
    let domain = &cfg.domain;
    let tr = world.tracer();
    let mut probe = StepProbe::new(world);
    let mut agg = RecoveryReport {
        attempts: 1,
        ..RecoveryReport::default()
    };
    // Per-rank numerical-health state. The monitor's injection identities
    // key off the *launch* world rank, which every rank keeps across
    // shrinks, so a seeded fault lands on the intended rank regardless of
    // how the grid has contracted by then.
    let hm = health.map(|h| HealthMonitor::new(h.fingerprint, h.injection.corrupt));
    let mut nan_fired = false;
    let mut hreport = HealthReport::default();
    if let Some(ck) = ckpt {
        assert!(ck.every >= 1, "checkpoint cadence must be >= 1");
        if ck.base_step > 0 {
            world.timeline().event(
                EventKind::Resume,
                Some(ck.base_step),
                &format!("resumed from checkpoint at global step {}", ck.base_step),
            );
        }
    }
    // Particles still alive across shrinks (the loss accounting base).
    let mut live_n = initial.len();
    // After a shrink the run continues on an owned survivor world; the
    // borrowed launch world stays behind only for rank-local telemetry
    // (stats and recorders are shared across splits).
    let mut shrunk: Option<C> = None;
    match method {
        Method::CaAllPairs { c } => {
            let mut grid = ProcGrid::new_all_pairs(p, c).expect("invalid all-pairs grid");
            let mut gc = GridComms::new(world, grid);
            let mut st = if gc.is_leader() {
                id_block_subset(initial, grid.teams(), gc.team())
            } else {
                Vec::new()
            };
            for step in 0..cfg.steps {
                let _step_g = tr.driver_span("step", step);
                if gc.is_leader() {
                    let _g = tr.driver_span("integrate", step);
                    cfg.integrator.pre_force(&mut st, cfg.dt);
                    reset_forces(&mut st);
                }
                // A ColumnsLost verdict shrinks the world onto the
                // survivors and re-runs this step's evaluation there.
                let (rep, pe_partial) = loop {
                    let r = {
                        let _g = tr.driver_span("force", step);
                        ca_all_pairs_forces_ft_health(
                            &gc,
                            &mut st,
                            &cfg.law,
                            domain,
                            cfg.boundary,
                            policy,
                            step as u64,
                            hm.as_ref(),
                        )
                    };
                    match r {
                        Ok(rep) => break rep,
                        Err(FaultError::ColumnsLost { dead_teams, .. }) => {
                            let was_leader = gc.is_leader();
                            let cur: &C = shrunk.as_ref().unwrap_or(world);
                            match shrink_world(
                                cur, &grid, &dead_teams, was_leader, &st, &mut live_n, &mut agg,
                                step,
                            ) {
                                None => {
                                    return Ok((
                                        Vec::new(),
                                        world.stats(),
                                        agg,
                                        health.map(|_| hreport),
                                    ))
                                }
                                Some((next, full)) => {
                                    let p_new = next.size();
                                    // The largest replication the survivor
                                    // count still supports (c' = 1 always
                                    // qualifies: every rank its own team).
                                    let c_new = (1..=grid.c())
                                        .rev()
                                        .find(|&cc| ProcGrid::new_all_pairs(p_new, cc).is_ok())
                                        .expect("c = 1 is always a valid all-pairs grid");
                                    grid = ProcGrid::new_all_pairs(p_new, c_new).unwrap();
                                    gc = GridComms::new(&next, grid);
                                    shrunk = Some(next);
                                    st = if gc.is_leader() {
                                        id_block_subset(&full, grid.teams(), gc.team())
                                    } else {
                                        Vec::new()
                                    };
                                }
                            }
                        }
                        Err(e) => return Err(e),
                    }
                };
                agg.attempts = agg.attempts.max(rep.attempts);
                agg.recovered |= rep.recovered;
                hreport.fingerprint_mismatches += rep.fingerprint_mismatches as u64;
                let checked = health.is_some_and(|h| h.checks_step(step as u64));
                let mut blame = None;
                if let Some(h) = health {
                    if checked {
                        blame = health_scan_forces(
                            world,
                            h,
                            &mut nan_fired,
                            gc.is_leader(),
                            &mut st,
                            step,
                        );
                    }
                }
                if gc.is_leader() {
                    let _g = tr.driver_span("integrate", step);
                    cfg.integrator
                        .post_force(&mut st, cfg.dt, domain, cfg.boundary);
                } else {
                    st.clear();
                }
                let mut sampled = (0.0, 0.0);
                if checked {
                    if blame.is_none() {
                        blame = health_scan_state(world, gc.is_leader(), &st, step);
                    }
                    let inv = if gc.is_leader() {
                        Invariants::partial(&st)
                    } else {
                        Invariants::default()
                    };
                    let cur: &C = shrunk.as_ref().unwrap_or(world);
                    sampled = health_reduce(cur, blame, inv, pe_partial, step, &mut hreport)?;
                }
                if let Some(ck) = ckpt {
                    let done = ck.base_step + step as u64 + 1;
                    if done.is_multiple_of(ck.every as u64) || ck.crash_at == Some(done) {
                        let cur: &C = shrunk.as_ref().unwrap_or(world);
                        persist_checkpoint(cur, &grid, gc.is_leader(), &st, ck, done);
                    }
                }
                probe.sample_with(world, step, st.len(), sampled.0, sampled.1);
            }
            let owned = if gc.is_leader() { st } else { Vec::new() };
            Ok((owned, world.stats(), agg, health.map(|_| hreport)))
        }
        Method::Ca1dCutoff { c } | Method::Ca2dCutoff { c } => {
            let two_d = matches!(method, Method::Ca2dCutoff { .. });
            let mut grid = ProcGrid::new(p, c).expect("invalid cutoff grid");
            let mut gc = GridComms::new(world, grid);
            let mut teams = grid.teams();
            let r_c = cfg.law.cutoff().unwrap();
            let (mut tx, mut ty) = if two_d {
                team_grid_dims(teams)
            } else {
                (teams, 1)
            };
            let mut st = if gc.is_leader() {
                if two_d {
                    spatial_subset_2d(initial, domain, tx, ty, gc.team())
                } else {
                    spatial_subset_1d(initial, domain, teams, gc.team())
                }
            } else {
                Vec::new()
            };
            let periodic = cfg.boundary == Boundary::Periodic;
            // Whether a shrunken grid with replication `cc` on `p_new`
            // ranks still satisfies the cutoff constraint (c ≤ window).
            let valid_c = |p_new: usize, cc: usize| -> bool {
                if !p_new.is_multiple_of(cc) || ProcGrid::new(p_new, cc).is_err() {
                    return false;
                }
                let tn = p_new / cc;
                let (txn, tyn) = if two_d { team_grid_dims(tn) } else { (tn, 1) };
                match (two_d, periodic) {
                    (true, false) => {
                        validate_cutoff(&Window2d::from_cutoff(domain, txn, tyn, r_c), tn, cc)
                            .is_ok()
                    }
                    (true, true) => validate_cutoff(
                        &Window2dPeriodic::from_cutoff(domain, txn, tyn, r_c),
                        tn,
                        cc,
                    )
                    .is_ok(),
                    (false, false) => {
                        validate_cutoff(&Window1d::from_cutoff(domain, tn, r_c), tn, cc).is_ok()
                    }
                    (false, true) => {
                        validate_cutoff(&Window1dPeriodic::from_cutoff(domain, tn, r_c), tn, cc)
                            .is_ok()
                    }
                }
            };
            for step in 0..cfg.steps {
                let _step_g = tr.driver_span("step", step);
                if gc.is_leader() {
                    let _g = tr.driver_span("integrate", step);
                    cfg.integrator.pre_force(&mut st, cfg.dt);
                    reset_forces(&mut st);
                }
                let (rep, pe_partial) = loop {
                    let r = {
                        let _g = tr.driver_span("force", step);
                        match (two_d, periodic) {
                            (true, false) => {
                                let window = Window2d::from_cutoff(domain, tx, ty, r_c);
                                ca_cutoff_forces_ft_health(
                                    &gc, &window, &mut st, &cfg.law, domain, cfg.boundary, policy,
                                    step as u64, hm.as_ref(),
                                )
                            }
                            (true, true) => {
                                let window = Window2dPeriodic::from_cutoff(domain, tx, ty, r_c);
                                ca_cutoff_forces_ft_health(
                                    &gc, &window, &mut st, &cfg.law, domain, cfg.boundary, policy,
                                    step as u64, hm.as_ref(),
                                )
                            }
                            (false, false) => {
                                let window = Window1d::from_cutoff(domain, teams, r_c);
                                ca_cutoff_forces_ft_health(
                                    &gc, &window, &mut st, &cfg.law, domain, cfg.boundary, policy,
                                    step as u64, hm.as_ref(),
                                )
                            }
                            (false, true) => {
                                let window = Window1dPeriodic::from_cutoff(domain, teams, r_c);
                                ca_cutoff_forces_ft_health(
                                    &gc, &window, &mut st, &cfg.law, domain, cfg.boundary, policy,
                                    step as u64, hm.as_ref(),
                                )
                            }
                        }
                    };
                    match r {
                        Ok(rep) => break rep,
                        Err(FaultError::ColumnsLost { dead_teams, .. }) => {
                            let was_leader = gc.is_leader();
                            let cur: &C = shrunk.as_ref().unwrap_or(world);
                            match shrink_world(
                                cur, &grid, &dead_teams, was_leader, &st, &mut live_n, &mut agg,
                                step,
                            ) {
                                None => {
                                    return Ok((
                                        Vec::new(),
                                        world.stats(),
                                        agg,
                                        health.map(|_| hreport),
                                    ))
                                }
                                Some((next, full)) => {
                                    let p_new = next.size();
                                    let Some(c_new) =
                                        (1..=grid.c()).rev().find(|&cc| valid_c(p_new, cc))
                                    else {
                                        // No shrunken grid satisfies the
                                        // cutoff constraint: agreed, since
                                        // every survivor evaluates the same
                                        // deterministic predicate.
                                        return Err(FaultError::Unrecoverable {
                                            rank: world.rank(),
                                            c: grid.c(),
                                        });
                                    };
                                    grid = ProcGrid::new(p_new, c_new).unwrap();
                                    gc = GridComms::new(&next, grid);
                                    shrunk = Some(next);
                                    teams = grid.teams();
                                    (tx, ty) = if two_d {
                                        team_grid_dims(teams)
                                    } else {
                                        (teams, 1)
                                    };
                                    st = if gc.is_leader() {
                                        if two_d {
                                            spatial_subset_2d(&full, domain, tx, ty, gc.team())
                                        } else {
                                            spatial_subset_1d(&full, domain, teams, gc.team())
                                        }
                                    } else {
                                        Vec::new()
                                    };
                                }
                            }
                        }
                        Err(e) => return Err(e),
                    }
                };
                agg.attempts = agg.attempts.max(rep.attempts);
                agg.recovered |= rep.recovered;
                hreport.fingerprint_mismatches += rep.fingerprint_mismatches as u64;
                let checked = health.is_some_and(|h| h.checks_step(step as u64));
                let mut blame = None;
                if let Some(h) = health {
                    if checked {
                        blame = health_scan_forces(
                            world,
                            h,
                            &mut nan_fired,
                            gc.is_leader(),
                            &mut st,
                            step,
                        );
                    }
                }
                if gc.is_leader() {
                    {
                        let _g = tr.driver_span("integrate", step);
                        cfg.integrator
                            .post_force(&mut st, cfg.dt, domain, cfg.boundary);
                    }
                    let _g = tr.driver_span("reassign", step);
                    if two_d {
                        reassign_particles(&gc.row, &mut st, |q| {
                            team_of_xy(domain, tx, ty, q.pos.x, q.pos.y)
                        });
                    } else {
                        reassign_particles(&gc.row, &mut st, |q| {
                            team_of_x(domain, teams, q.pos.x)
                        });
                    }
                } else {
                    st.clear();
                }
                let mut sampled = (0.0, 0.0);
                if checked {
                    if blame.is_none() {
                        blame = health_scan_state(world, gc.is_leader(), &st, step);
                    }
                    let inv = if gc.is_leader() {
                        Invariants::partial(&st)
                    } else {
                        Invariants::default()
                    };
                    let cur: &C = shrunk.as_ref().unwrap_or(world);
                    sampled = health_reduce(cur, blame, inv, pe_partial, step, &mut hreport)?;
                }
                if let Some(ck) = ckpt {
                    let done = ck.base_step + step as u64 + 1;
                    if done.is_multiple_of(ck.every as u64) || ck.crash_at == Some(done) {
                        let cur: &C = shrunk.as_ref().unwrap_or(world);
                        persist_checkpoint(cur, &grid, gc.is_leader(), &st, ck, done);
                    }
                }
                probe.sample_with(world, step, st.len(), sampled.0, sampled.1);
            }
            world.set_phase(Phase::Other);
            let owned = if gc.is_leader() { st } else { Vec::new() };
            Ok((owned, world.stats(), agg, health.map(|_| hreport)))
        }
        _ => panic!(
            "{method:?} has no fault-tolerant driver; chaos runs support the CA methods \
             (ca-all-pairs, ca-1d-cutoff, ca-2d-cutoff)"
        ),
    }
}

fn validate_run<F: ForceLaw, I>(cfg: &SimConfig<F, I>, method: Method) {
    if method.needs_cutoff() {
        assert!(
            cfg.law.cutoff().is_some(),
            "{method:?} requires a force law with a cutoff radius"
        );
    }
}

fn gather_results(out: Vec<(Vec<Particle>, CommStats)>, n: usize) -> RunResult {
    let mut particles = Vec::with_capacity(n);
    let mut stats = Vec::with_capacity(out.len());
    for (mut ps, st) in out {
        particles.append(&mut ps);
        stats.push(st);
    }
    particles.sort_by_key(|q| q.id);
    assert_eq!(
        particles.len(),
        n,
        "particles lost or duplicated in distributed run"
    );
    RunResult { particles, stats }
}

/// Per-rank body of a distributed run.
fn run_rank<F, I, C>(
    cfg: &SimConfig<F, I>,
    method: Method,
    world: &mut C,
    initial: &[Particle],
) -> (Vec<Particle>, CommStats)
where
    F: ForceLaw,
    I: Integrator,
    C: Communicator,
{
    let p = world.size();
    let domain = &cfg.domain;
    let tr = world.tracer();
    let mut probe = StepProbe::new(world);
    match method {
        Method::CaAllPairs { c } => {
            let grid = ProcGrid::new_all_pairs(p, c).expect("invalid all-pairs grid");
            let gc = GridComms::new(world, grid);
            let mut st = if gc.is_leader() {
                id_block_subset(initial, grid.teams(), gc.team())
            } else {
                Vec::new()
            };
            for step in 0..cfg.steps {
                let _step_g = tr.driver_span("step", step);
                if gc.is_leader() {
                    let _g = tr.driver_span("integrate", step);
                    cfg.integrator.pre_force(&mut st, cfg.dt);
                    reset_forces(&mut st);
                }
                {
                    let _g = tr.driver_span("force", step);
                    ca_all_pairs_forces(&gc, &mut st, &cfg.law, domain, cfg.boundary);
                }
                if gc.is_leader() {
                    let _g = tr.driver_span("integrate", step);
                    cfg.integrator
                        .post_force(&mut st, cfg.dt, domain, cfg.boundary);
                } else {
                    st.clear();
                }
                probe.sample(world, step, st.len());
            }
            let owned = if gc.is_leader() { st } else { Vec::new() };
            (owned, world.stats())
        }
        Method::ParticleRing | Method::ParticleRingSymmetric | Method::NaiveAllgather => {
            let mut my = id_block_subset(initial, p, world.rank());
            for step in 0..cfg.steps {
                let _step_g = tr.driver_span("step", step);
                {
                    let _g = tr.driver_span("integrate", step);
                    cfg.integrator.pre_force(&mut my, cfg.dt);
                    reset_forces(&mut my);
                }
                {
                    let _g = tr.driver_span("force", step);
                    match method {
                        Method::ParticleRing => {
                            particle_ring_forces(world, &mut my, &cfg.law, domain, cfg.boundary)
                        }
                        Method::ParticleRingSymmetric => {
                            crate::baselines::particle_ring_symmetric_forces(
                                world, &mut my, &cfg.law, domain, cfg.boundary,
                            )
                        }
                        _ => {
                            naive_allgather_forces(world, &mut my, &cfg.law, domain, cfg.boundary)
                        }
                    }
                }
                let _g = tr.driver_span("integrate", step);
                cfg.integrator
                    .post_force(&mut my, cfg.dt, domain, cfg.boundary);
                probe.sample(world, step, my.len());
            }
            (my, world.stats())
        }
        Method::ForceDecomposition => {
            let q = (p as f64).sqrt().round() as usize;
            assert_eq!(q * q, p, "force decomposition needs square p");
            let (i, j) = (world.rank() / q, world.rank() % q);
            let mut st = if i == j {
                id_block_subset(initial, q, i)
            } else {
                Vec::new()
            };
            for step in 0..cfg.steps {
                let _step_g = tr.driver_span("step", step);
                if i == j {
                    let _g = tr.driver_span("integrate", step);
                    cfg.integrator.pre_force(&mut st, cfg.dt);
                    reset_forces(&mut st);
                }
                {
                    let _g = tr.driver_span("force", step);
                    force_decomposition_forces(world, &mut st, &cfg.law, domain, cfg.boundary);
                }
                if i == j {
                    let _g = tr.driver_span("integrate", step);
                    cfg.integrator
                        .post_force(&mut st, cfg.dt, domain, cfg.boundary);
                }
                probe.sample(world, step, st.len());
            }
            (st, world.stats())
        }
        Method::Ca1dCutoff { c } | Method::Ca2dCutoff { c } => {
            let two_d = matches!(method, Method::Ca2dCutoff { .. });
            let grid = ProcGrid::new(p, c).expect("invalid cutoff grid");
            let gc = GridComms::new(world, grid);
            let teams = grid.teams();
            let r_c = cfg.law.cutoff().unwrap();
            let (tx, ty) = if two_d {
                team_grid_dims(teams)
            } else {
                (teams, 1)
            };
            let mut st = if gc.is_leader() {
                if two_d {
                    spatial_subset_2d(initial, domain, tx, ty, gc.team())
                } else {
                    spatial_subset_1d(initial, domain, teams, gc.team())
                }
            } else {
                Vec::new()
            };
            let periodic = cfg.boundary == Boundary::Periodic;
            for step in 0..cfg.steps {
                let _step_g = tr.driver_span("step", step);
                if gc.is_leader() {
                    let _g = tr.driver_span("integrate", step);
                    cfg.integrator.pre_force(&mut st, cfg.dt);
                    reset_forces(&mut st);
                }
                // Periodic boundaries take the wrap-around windows; the
                // paper's non-periodic setting takes the clipped ones.
                {
                    let _g = tr.driver_span("force", step);
                    match (two_d, periodic) {
                        (true, false) => {
                            let window = Window2d::from_cutoff(domain, tx, ty, r_c);
                            validate_cutoff(&window, teams, c).expect("invalid 2D cutoff config");
                            ca_cutoff_forces(&gc, &window, &mut st, &cfg.law, domain, cfg.boundary);
                        }
                        (true, true) => {
                            let window = Window2dPeriodic::from_cutoff(domain, tx, ty, r_c);
                            validate_cutoff(&window, teams, c).expect("invalid 2D cutoff config");
                            ca_cutoff_forces(&gc, &window, &mut st, &cfg.law, domain, cfg.boundary);
                        }
                        (false, false) => {
                            let window = Window1d::from_cutoff(domain, teams, r_c);
                            validate_cutoff(&window, teams, c).expect("invalid 1D cutoff config");
                            ca_cutoff_forces(&gc, &window, &mut st, &cfg.law, domain, cfg.boundary);
                        }
                        (false, true) => {
                            let window = Window1dPeriodic::from_cutoff(domain, teams, r_c);
                            validate_cutoff(&window, teams, c).expect("invalid 1D cutoff config");
                            ca_cutoff_forces(&gc, &window, &mut st, &cfg.law, domain, cfg.boundary);
                        }
                    }
                }
                if gc.is_leader() {
                    {
                        let _g = tr.driver_span("integrate", step);
                        cfg.integrator
                            .post_force(&mut st, cfg.dt, domain, cfg.boundary);
                    }
                    // Keep the spatial decomposition valid for the next step.
                    let _g = tr.driver_span("reassign", step);
                    if two_d {
                        reassign_particles(&gc.row, &mut st, |q| {
                            team_of_xy(domain, tx, ty, q.pos.x, q.pos.y)
                        });
                    } else {
                        reassign_particles(&gc.row, &mut st, |q| {
                            team_of_x(domain, teams, q.pos.x)
                        });
                    }
                } else {
                    st.clear();
                }
                probe.sample(world, step, st.len());
            }
            world.set_phase(Phase::Other);
            let owned = if gc.is_leader() { st } else { Vec::new() };
            (owned, world.stats())
        }
        Method::Midpoint1d | Method::Midpoint2d => {
            let two_d = matches!(method, Method::Midpoint2d);
            let r_c = cfg.law.cutoff().unwrap();
            let (tx, ty) = if two_d { team_grid_dims(p) } else { (p, 1) };
            let mut my = if two_d {
                spatial_subset_2d(initial, domain, tx, ty, world.rank())
            } else {
                spatial_subset_1d(initial, domain, p, world.rank())
            };
            let periodic = cfg.boundary == Boundary::Periodic;
            for step in 0..cfg.steps {
                let _step_g = tr.driver_span("step", step);
                {
                    let _g = tr.driver_span("integrate", step);
                    cfg.integrator.pre_force(&mut my, cfg.dt);
                    reset_forces(&mut my);
                }
                {
                    let _g = tr.driver_span("force", step);
                    match (two_d, periodic) {
                        (true, false) => {
                            let window = Window2d::from_cutoff(domain, tx, ty, r_c / 2.0);
                            midpoint_forces(world, &window, &mut my, &cfg.law, domain, cfg.boundary,
                                |pos| team_of_xy(domain, tx, ty, pos.x, pos.y));
                        }
                        (true, true) => {
                            let window = Window2dPeriodic::from_cutoff(domain, tx, ty, r_c / 2.0);
                            midpoint_forces(world, &window, &mut my, &cfg.law, domain, cfg.boundary,
                                |pos| team_of_xy(domain, tx, ty, pos.x, pos.y));
                        }
                        (false, false) => {
                            let window = Window1d::from_cutoff(domain, p, r_c / 2.0);
                            midpoint_forces(world, &window, &mut my, &cfg.law, domain, cfg.boundary,
                                |pos| team_of_x(domain, p, pos.x));
                        }
                        (false, true) => {
                            let window = Window1dPeriodic::from_cutoff(domain, p, r_c / 2.0);
                            midpoint_forces(world, &window, &mut my, &cfg.law, domain, cfg.boundary,
                                |pos| team_of_x(domain, p, pos.x));
                        }
                    }
                }
                {
                    let _g = tr.driver_span("integrate", step);
                    cfg.integrator
                        .post_force(&mut my, cfg.dt, domain, cfg.boundary);
                }
                let _g = tr.driver_span("reassign", step);
                if two_d {
                    reassign_particles(world, &mut my, |q| {
                        team_of_xy(domain, tx, ty, q.pos.x, q.pos.y)
                    });
                } else {
                    reassign_particles(world, &mut my, |q| team_of_x(domain, p, q.pos.x));
                }
                probe.sample(world, step, my.len());
            }
            (my, world.stats())
        }
        Method::SpatialHalo1d | Method::SpatialHalo2d => {
            let two_d = matches!(method, Method::SpatialHalo2d);
            let r_c = cfg.law.cutoff().unwrap();
            let (tx, ty) = if two_d { team_grid_dims(p) } else { (p, 1) };
            let mut my = if two_d {
                spatial_subset_2d(initial, domain, tx, ty, world.rank())
            } else {
                spatial_subset_1d(initial, domain, p, world.rank())
            };
            let periodic = cfg.boundary == Boundary::Periodic;
            for step in 0..cfg.steps {
                let _step_g = tr.driver_span("step", step);
                {
                    let _g = tr.driver_span("integrate", step);
                    cfg.integrator.pre_force(&mut my, cfg.dt);
                    reset_forces(&mut my);
                }
                {
                    let _g = tr.driver_span("force", step);
                    match (two_d, periodic) {
                        (true, false) => {
                            let window = Window2d::from_cutoff(domain, tx, ty, r_c);
                            spatial_halo_forces(
                                world, &window, &mut my, &cfg.law, domain, cfg.boundary,
                            );
                        }
                        (true, true) => {
                            let window = Window2dPeriodic::from_cutoff(domain, tx, ty, r_c);
                            spatial_halo_forces(
                                world, &window, &mut my, &cfg.law, domain, cfg.boundary,
                            );
                        }
                        (false, false) => {
                            let window = Window1d::from_cutoff(domain, p, r_c);
                            spatial_halo_forces(
                                world, &window, &mut my, &cfg.law, domain, cfg.boundary,
                            );
                        }
                        (false, true) => {
                            let window = Window1dPeriodic::from_cutoff(domain, p, r_c);
                            spatial_halo_forces(
                                world, &window, &mut my, &cfg.law, domain, cfg.boundary,
                            );
                        }
                    }
                }
                {
                    let _g = tr.driver_span("integrate", step);
                    cfg.integrator
                        .post_force(&mut my, cfg.dt, domain, cfg.boundary);
                }
                let _g = tr.driver_span("reassign", step);
                if two_d {
                    reassign_particles(world, &mut my, |q| {
                        team_of_xy(domain, tx, ty, q.pos.x, q.pos.y)
                    });
                } else {
                    reassign_particles(world, &mut my, |q| team_of_x(domain, p, q.pos.x));
                }
                probe.sample(world, step, my.len());
            }
            (my, world.stats())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_physics::{init, Cutoff, RepulsiveInverseSquare, SemiImplicitEuler, Vec2};

    fn assert_trajectories_match(got: &[Particle], want: &[Particle], tol: f64, label: &str) {
        assert_eq!(got.len(), want.len(), "{label}");
        for (g, w) in got.iter().zip(want) {
            assert_eq!(g.id, w.id, "{label}");
            let dp = (g.pos - w.pos).norm();
            let dv = (g.vel - w.vel).norm();
            assert!(
                dp <= tol && dv <= tol,
                "{label}: id={} dp={dp} dv={dv}\n got {:?}\nwant {:?}",
                g.id,
                g,
                w
            );
        }
    }

    fn all_pairs_cfg(steps: usize) -> SimConfig<RepulsiveInverseSquare, SemiImplicitEuler> {
        SimConfig {
            law: RepulsiveInverseSquare {
                strength: 1e-3,
                softening: 1e-3,
            },
            integrator: SemiImplicitEuler,
            domain: Domain::unit(),
            boundary: Boundary::Reflective,
            dt: 0.01,
            steps,
        }
    }

    #[test]
    fn multi_step_trajectory_matches_serial_all_methods() {
        let cfg = all_pairs_cfg(5);
        let initial = init::uniform(24, &cfg.domain, 42);
        let want = run_serial(&cfg, &initial);
        for (method, p) in [
            (Method::CaAllPairs { c: 1 }, 4),
            (Method::CaAllPairs { c: 2 }, 8),
            (Method::CaAllPairs { c: 2 }, 16),
            (Method::ParticleRing, 6),
            (Method::NaiveAllgather, 4),
            (Method::ForceDecomposition, 9),
        ] {
            let got = run_distributed(&cfg, method, p, &initial);
            assert_trajectories_match(
                &got.particles,
                &want,
                1e-9,
                &format!("{method:?} p={p}"),
            );
        }
    }

    #[test]
    fn multi_step_cutoff_trajectories_match_serial() {
        let law = Cutoff::new(
            RepulsiveInverseSquare {
                strength: 1e-3,
                softening: 1e-3,
            },
            0.25,
        );
        let cfg = SimConfig {
            law,
            integrator: SemiImplicitEuler,
            domain: Domain::unit(),
            boundary: Boundary::Reflective,
            dt: 0.01,
            steps: 4,
        };
        let initial = init::uniform(40, &cfg.domain, 7);
        let want = run_serial(&cfg, &initial);
        for (method, p) in [
            (Method::Ca1dCutoff { c: 1 }, 4),
            (Method::Ca1dCutoff { c: 2 }, 8),
            (Method::Ca2dCutoff { c: 1 }, 4),
            (Method::Ca2dCutoff { c: 2 }, 8),
            (Method::SpatialHalo1d, 4),
            (Method::SpatialHalo2d, 4),
        ] {
            let got = run_distributed(&cfg, method, p, &initial);
            assert_trajectories_match(
                &got.particles,
                &want,
                1e-9,
                &format!("{method:?} p={p}"),
            );
        }
    }

    #[test]
    fn verlet_trajectories_match_serial() {
        use nbody_physics::VelocityVerlet;
        let cfg = SimConfig {
            law: RepulsiveInverseSquare {
                strength: 1e-3,
                softening: 1e-3,
            },
            integrator: VelocityVerlet,
            domain: Domain::unit(),
            boundary: Boundary::Reflective,
            dt: 0.01,
            steps: 6,
        };
        let initial = init::uniform(20, &cfg.domain, 11);
        let want = run_serial(&cfg, &initial);
        let got = run_distributed(&cfg, Method::CaAllPairs { c: 2 }, 8, &initial);
        assert_trajectories_match(&got.particles, &want, 1e-9, "verlet ca");
    }

    #[test]
    fn momentum_conserved_in_distributed_run() {
        let cfg = all_pairs_cfg(10);
        let mut initial = init::uniform(16, &cfg.domain, 5);
        init::thermalize(&mut initial, 0.01, 6);
        let got = run_distributed(&cfg, Method::CaAllPairs { c: 2 }, 4, &initial);
        // Reflective walls flip momentum, so only check finiteness + bounds.
        for q in &got.particles {
            assert!(q.pos.is_finite() && q.vel.is_finite());
            assert!(cfg.domain.contains(q.pos) || q.pos.x <= 1.0);
        }
    }

    #[test]
    fn reassignment_preserves_particle_count_over_long_run() {
        let law = Cutoff::new(
            RepulsiveInverseSquare {
                strength: 5e-3,
                softening: 1e-3,
            },
            0.3,
        );
        let cfg = SimConfig {
            law,
            integrator: SemiImplicitEuler,
            domain: Domain::unit(),
            boundary: Boundary::Reflective,
            dt: 0.02,
            steps: 15,
        };
        let mut initial = init::uniform(32, &cfg.domain, 9);
        init::thermalize(&mut initial, 0.05, 10);
        let got = run_distributed(&cfg, Method::Ca1dCutoff { c: 2 }, 8, &initial);
        assert_eq!(got.particles.len(), 32);
        let want = run_serial(&cfg, &initial);
        assert_trajectories_match(&got.particles, &want, 1e-8, "long cutoff run");
    }

    #[test]
    fn stats_capture_reassign_phase() {
        let law = Cutoff::new(RepulsiveInverseSquare::default(), 0.3);
        let cfg = SimConfig {
            law,
            integrator: SemiImplicitEuler,
            domain: Domain::unit(),
            boundary: Boundary::Reflective,
            dt: 0.01,
            steps: 2,
        };
        let initial = init::uniform(24, &cfg.domain, 3);
        let got = run_distributed(&cfg, Method::Ca1dCutoff { c: 2 }, 8, &initial);
        let leaders_with_reassign = got
            .stats
            .iter()
            .filter(|s| s.phase(Phase::Reassign).messages > 0)
            .count();
        assert_eq!(leaders_with_reassign, 4, "only the 4 leaders re-assign");
    }

    #[test]
    #[should_panic(expected = "requires a force law with a cutoff")]
    fn cutoff_method_rejects_all_pairs_law() {
        let cfg = all_pairs_cfg(1);
        let initial = vec![Particle::at(0, Vec2::new(0.5, 0.5))];
        run_distributed(&cfg, Method::Ca1dCutoff { c: 1 }, 2, &initial);
    }

    #[test]
    fn traced_run_matches_untraced_and_phase_sums_tile_wall() {
        let law = Cutoff::new(
            RepulsiveInverseSquare {
                strength: 1e-3,
                softening: 1e-3,
            },
            0.25,
        );
        let cfg = SimConfig {
            law,
            integrator: SemiImplicitEuler,
            domain: Domain::unit(),
            boundary: Boundary::Reflective,
            dt: 0.01,
            steps: 3,
        };
        // Big enough that thread-spawn slack (ranks open their timelines
        // slightly after the shared epoch) is well under the 10% margin.
        let initial = init::uniform(600, &cfg.domain, 13);
        let plain = run_distributed(&cfg, Method::Ca1dCutoff { c: 2 }, 8, &initial);
        let (traced, trace, metrics) =
            run_distributed_traced(&cfg, Method::Ca1dCutoff { c: 2 }, 8, &initial);
        assert_eq!(plain.particles, traced.particles, "tracing must not perturb physics");

        // Live metrics ride along: every rank shipped shift messages, and
        // the leaders recorded their particle memory high-water marks.
        assert_eq!(metrics.ranks.len(), 8);
        assert!(metrics.sum_counter("comm_send_messages", Some(Phase::Shift)) > 0);
        assert!(metrics.max_gauge("mem_particles_hwm", None) > 0);

        assert_eq!(trace.ranks, 8);
        // Phase windows tile each rank's timeline, so the mean per-phase
        // seconds sum to the wall time (up to merge/collection slack at the
        // very end of each rank's run).
        let b = trace.phase_breakdown();
        assert!(b.wall_secs > 0.0);
        let sum = b.phase_sum_secs();
        assert!(
            (sum - b.wall_secs).abs() <= 0.10 * b.wall_secs,
            "phase sum {sum} vs wall {}",
            b.wall_secs
        );
        // The cutoff method exercises shift, reduce, broadcast, and
        // reassign windows.
        let present = trace.phases_present();
        for want in [Phase::Shift, Phase::Reduce, Phase::Broadcast, Phase::Reassign] {
            assert!(present.contains(&want), "missing {want:?} in {present:?}");
        }
    }

    #[test]
    fn checkpointed_run_resumes_bit_identically() {
        let cfg = all_pairs_cfg(6);
        let initial = init::uniform(16, &cfg.domain, 9);
        let dir = std::env::temp_dir().join(format!("nbody-ckpt-sim-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let ck = CheckpointConfig {
            dir: dir.clone(),
            every: 2,
            base_step: 0,
            fingerprint: "test-fp".into(),
            seed: 9,
            crash_at: None,
        };
        let (res, _) = run_distributed_durable(
            &cfg,
            Method::CaAllPairs { c: 2 },
            4,
            &FaultPlan::empty(),
            &RetryPolicy::default(),
            Some(&ck),
            &initial,
        );
        let full = res.expect("fault-free durable run");
        // Persisting must not perturb the physics.
        let plain = run_distributed(&cfg, Method::CaAllPairs { c: 2 }, 4, &initial);
        assert_eq!(full.particles, plain.particles);
        assert_eq!(
            full.metrics.sum_counter("checkpoint_persisted_total", None),
            3,
            "cadence 2 over 6 steps lands bundles at steps 2, 4, 6"
        );
        let latest = nbody_durable::load_latest(&dir).unwrap();
        assert_eq!(latest.step, 6);
        // Resume from the mid-run bundle: restoring its bit-exact state
        // and running the remaining steps reproduces the full trajectory.
        let bundle =
            nbody_durable::load_path(&nbody_durable::checkpoint_path(&dir, 4)).unwrap();
        bundle.validate_fingerprint("test-fp").unwrap();
        let restored = bundle.all_particles();
        let tail = all_pairs_cfg(2);
        let resumed = run_distributed(&tail, Method::CaAllPairs { c: 2 }, 4, &restored).particles;
        assert_eq!(
            resumed, full.particles,
            "resume from step 4 must land bit-identical to the uninterrupted run"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn traced_run_reports_driver_sections_per_step() {
        let cfg = all_pairs_cfg(4);
        let initial = init::uniform(24, &cfg.domain, 42);
        let (_, trace, _) = run_distributed_traced(&cfg, Method::CaAllPairs { c: 2 }, 8, &initial);
        let reports = trace.step_reports();
        assert_eq!(reports.len(), 4, "one report per timestep");
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.step as usize, i);
            let names: Vec<&str> = r.parts.iter().map(|(n, _)| n.as_str()).collect();
            assert!(names.contains(&"step"), "{names:?}");
            assert!(names.contains(&"force"), "{names:?}");
            assert!(names.contains(&"integrate"), "{names:?}");
            // The step section dominates its parts on every rank.
            let step_max = r.parts.iter().find(|(n, _)| n == "step").unwrap().1.max;
            let force_max = r.parts.iter().find(|(n, _)| n == "force").unwrap().1.max;
            assert!(step_max >= force_max);
        }
    }
}

/// Run a distributed simulation while sampling intermediate states: the
/// trajectory is executed in chunks of `every` steps and the gathered
/// state after each chunk is recorded (including the final state).
///
/// Implemented as repeated [`run_distributed`] calls, so it adds no
/// protocol complexity; note that [`VelocityVerlet`] carries the previous
/// step's forces across steps, which resets at chunk boundaries — use a
/// single-phase integrator (e.g. [`SemiImplicitEuler`]) when exact
/// equivalence to an unsampled run matters.
///
/// [`VelocityVerlet`]: nbody_physics::VelocityVerlet
/// [`SemiImplicitEuler`]: nbody_physics::SemiImplicitEuler
pub fn run_distributed_sampled<F, I>(
    cfg: &SimConfig<F, I>,
    method: Method,
    p: usize,
    initial: &[Particle],
    every: usize,
) -> Vec<Vec<Particle>>
where
    F: ForceLaw + Sync + Clone,
    I: Integrator + Sync + Clone,
{
    assert!(every > 0, "sampling interval must be positive");
    let mut snapshots = Vec::new();
    let mut state: Vec<Particle> = initial.to_vec();
    let mut remaining = cfg.steps;
    while remaining > 0 {
        let chunk = remaining.min(every);
        let chunk_cfg = SimConfig {
            law: cfg.law.clone(),
            integrator: cfg.integrator.clone(),
            domain: cfg.domain,
            boundary: cfg.boundary,
            dt: cfg.dt,
            steps: chunk,
        };
        state = run_distributed(&chunk_cfg, method, p, &state).particles;
        snapshots.push(state.clone());
        remaining -= chunk;
    }
    snapshots
}

#[cfg(test)]
mod sampled_tests {
    use super::*;
    use nbody_physics::{init, RepulsiveInverseSquare, SemiImplicitEuler};

    #[test]
    fn sampled_run_matches_unsampled_for_single_phase_integrators() {
        let cfg = SimConfig {
            law: RepulsiveInverseSquare {
                strength: 1e-3,
                softening: 1e-3,
            },
            integrator: SemiImplicitEuler,
            domain: Domain::unit(),
            boundary: Boundary::Reflective,
            dt: 0.01,
            steps: 9,
        };
        let initial = init::uniform(20, &cfg.domain, 4);
        let full = run_distributed(&cfg, Method::CaAllPairs { c: 2 }, 8, &initial).particles;
        let snaps = run_distributed_sampled(&cfg, Method::CaAllPairs { c: 2 }, 8, &initial, 4);
        // Chunks of 4, 4, 1.
        assert_eq!(snaps.len(), 3);
        assert_eq!(snaps.last().unwrap(), &full);
    }

    #[test]
    fn sampled_snapshots_evolve() {
        let cfg = SimConfig {
            law: RepulsiveInverseSquare {
                strength: 5e-3,
                softening: 1e-3,
            },
            integrator: SemiImplicitEuler,
            domain: Domain::unit(),
            boundary: Boundary::Reflective,
            dt: 0.02,
            steps: 6,
        };
        let initial = init::uniform(16, &cfg.domain, 7);
        let snaps = run_distributed_sampled(&cfg, Method::ParticleRing, 4, &initial, 2);
        assert_eq!(snaps.len(), 3);
        assert_ne!(snaps[0], snaps[2], "state must change over time");
        for s in &snaps {
            assert_eq!(s.len(), 16);
        }
    }
}
