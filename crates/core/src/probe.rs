//! Per-step timeline sampling for the simulation drivers.
//!
//! [`StepProbe`] sits at the end of each driver's timestep loop and turns
//! the rank's cumulative telemetry (communication statistics, compute
//! counters) into *per-step deltas* pushed into the rank's
//! [`TimelineRecorder`]. Two tiers of recording:
//!
//! * A [`step_mark`](TimelineRecorder::step_mark) lands in the bounded
//!   flight ring on **every** run (a couple of `Cell` reads and an
//!   `Instant::elapsed` per step) so a postmortem always knows the last
//!   steps each rank completed.
//! * A full [`StepSample`] (bytes moved, blocked seconds, flops, compute
//!   nanos, resident particles) is pushed only when the execution was
//!   started with step sampling on (instrumented runs), feeding the
//!   `/timeseries` endpoint and the drift detector.

use nbody_comm::{CommStats, Communicator, StepSample, TimelineRecorder};
use nbody_metrics::Counter;

/// Turns cumulative per-rank telemetry into per-step deltas.
pub struct StepProbe {
    tl: TimelineRecorder,
    flops: Counter,
    nanos: Counter,
    prev_send: u64,
    prev_coll: u64,
    prev_blocked: f64,
    prev_flops: u64,
    prev_nanos: u64,
    prev_t: f64,
}

impl StepProbe {
    /// A probe bound to `world`'s rank-local recorders. Counter handles
    /// share storage with the force kernels' meters, so reading them here
    /// sees everything the step recorded.
    pub fn new<C: Communicator>(world: &C) -> StepProbe {
        let tl = world.timeline();
        let rec = world.metrics();
        let prev_t = tl.now_secs();
        StepProbe {
            flops: rec.counter("compute_flops", None),
            nanos: rec.counter("compute_nanos", None),
            tl,
            prev_send: 0,
            prev_coll: 0,
            prev_blocked: 0.0,
            prev_flops: 0,
            prev_nanos: 0,
            prev_t,
        }
    }

    /// Record the step boundary: always marks the flight ring; when step
    /// sampling is on, also snapshots the deltas since the previous call.
    /// `particles` is the rank's resident particle count after the step
    /// (the imbalance input).
    pub fn sample<C: Communicator>(&mut self, world: &C, step: usize, particles: usize) {
        self.sample_with(world, step, particles, 0.0, 0.0);
    }

    /// [`sample`](StepProbe::sample) with the health monitors' globally
    /// reduced invariants attached: total energy and total-momentum norm
    /// after the step. Pass `0.0` for both on uninstrumented steps — zero
    /// is the series' "unmeasured" sentinel.
    pub fn sample_with<C: Communicator>(
        &mut self,
        world: &C,
        step: usize,
        particles: usize,
        energy: f64,
        momentum: f64,
    ) {
        self.tl.step_mark(step as u64);
        if !self.tl.wants_samples() {
            return;
        }
        let stats: CommStats = world.stats();
        let send = stats.total_bytes();
        let coll = stats.total_collective_bytes();
        let blocked = stats.total_blocked_secs();
        let flops = self.flops.get();
        let nanos = self.nanos.get();
        let t = self.tl.now_secs();
        self.tl.push_sample(StepSample {
            step: step as u32,
            t_secs: t,
            dt_secs: t - self.prev_t,
            send_bytes: send - self.prev_send,
            coll_bytes: coll - self.prev_coll,
            blocked_secs: blocked - self.prev_blocked,
            flops: flops - self.prev_flops,
            compute_nanos: nanos - self.prev_nanos,
            particles: particles as u64,
            energy,
            momentum,
        });
        self.prev_send = send;
        self.prev_coll = coll;
        self.prev_blocked = blocked;
        self.prev_flops = flops;
        self.prev_nanos = nanos;
        self.prev_t = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_comm::{run_ranks, run_ranks_traced, Phase};

    #[test]
    fn probe_samples_deltas_per_step_on_traced_runs() {
        let (_, _, _, timeline) = run_ranks_traced(2, |world| {
            let mut probe = StepProbe::new(world);
            for step in 0..3 {
                let other = 1 - world.rank();
                world.set_phase(Phase::Shift);
                // Each step ships one more element than the last.
                let payload = vec![7u64; step + 1];
                world.send(other, step as u64, &payload);
                world.recv::<u64>(other, step as u64);
                probe.sample(world, step, 10 * (step + 1));
            }
        });
        assert_eq!(timeline.ranks.len(), 2);
        for rt in &timeline.ranks {
            assert_eq!(rt.samples.len(), 3, "one sample per step");
            for (i, s) in rt.samples.iter().enumerate() {
                assert_eq!(s.step as usize, i);
                // Deltas, not cumulative totals: step i moved i+1 elements.
                assert_eq!(s.send_bytes, 8 * (i as u64 + 1));
                assert_eq!(s.particles, 10 * (i as u64 + 1));
                assert!(s.dt_secs >= 0.0 && s.t_secs >= s.dt_secs);
            }
            // The flight ring got a mark per step as well.
            assert_eq!(rt.events.len(), 3);
        }
    }

    #[test]
    fn probe_is_mark_only_on_plain_runs() {
        let out = run_ranks(1, |world| {
            let mut probe = StepProbe::new(world);
            probe.sample(world, 0, 5);
            world.timeline().finish().expect("flight ring is always on")
        });
        assert!(out[0].samples.is_empty(), "no series without sampling");
        assert_eq!(out[0].events.len(), 1, "step mark still lands");
    }
}
