//! Expected wire-traffic derivation for schedule conformance checking.
//!
//! The schedule generators in [`schedule`](crate::schedule) already emit
//! each algorithm's exact per-rank operation stream for the discrete-event
//! simulator. This module re-uses them to predict the point-to-point
//! message multiset a *real* probed run should put on the wire, in the form
//! the conformance checker in `nbody-wireprobe` consumes: one
//! [`ExpectedMsg`] per skew/shift send, with payload sizes in particle
//! counts (the unit both the schedule's 52-byte wire math and the
//! transport's in-memory byte counts agree on).

use nbody_comm::{ExpectedMsg, ExpectedSchedule};
use nbody_netsim::Op;
use nbody_physics::particle::PARTICLE_WIRE_BYTES;
use nbody_physics::{Boundary, Domain};

use crate::cutoff::validate_cutoff;
use crate::dist::{block_range, team_grid_dims};
use crate::grid::ProcGrid;
use crate::schedule::{AllPairsParams, CutoffParams};
use crate::sim::Method;
use crate::window::{Window1d, Window2d};
use crate::window_periodic::{Window1dPeriodic, Window2dPeriodic};

/// Run parameters the expected schedule is derived from — the same inputs
/// that configure [`run_distributed`](crate::sim::run_distributed), minus
/// physics that cannot change the message pattern (force strength,
/// integrator, dt).
#[derive(Debug, Clone)]
pub struct WireScheduleSpec {
    /// Force-evaluation method.
    pub method: Method,
    /// Total particles.
    pub n: usize,
    /// World ranks.
    pub p: usize,
    /// Timesteps.
    pub steps: usize,
    /// Simulation domain (sizes the cutoff windows).
    pub domain: Domain,
    /// Boundary condition (periodic windows wrap).
    pub boundary: Boundary,
    /// Cutoff radius, required by the cutoff methods.
    pub cutoff: Option<f64>,
}

/// Derive the per-run expected message multiset for `spec`.
///
/// * [`Method::CaAllPairs`]: full size checking — the id-block
///   distribution is static, so every skew/shift payload is predicted
///   exactly, repeated once per timestep.
/// * [`Method::Ca1dCutoff`] / [`Method::Ca2dCutoff`]: count-only checking
///   (`size_checked = false`) — re-assignment drifts the per-team block
///   sizes between steps, but the window structure (who talks to whom, how
///   many times) is static.
/// * Other methods have no CA schedule twin and return `Err`.
pub fn expected_schedule(spec: &WireScheduleSpec) -> Result<ExpectedSchedule, String> {
    match spec.method {
        Method::CaAllPairs { c } => all_pairs_schedule(spec, c),
        Method::Ca1dCutoff { c } => cutoff_schedule(spec, c, false),
        Method::Ca2dCutoff { c } => cutoff_schedule(spec, c, true),
        m => Err(format!(
            "{m:?} has no communication-schedule twin; conformance checking supports \
             the CA methods (ca-all-pairs, ca-1d-cutoff, ca-2d-cutoff)"
        )),
    }
}

/// Collect the checked-phase sends of one force evaluation of `program`,
/// repeated `steps` times (per-rank program order within each step).
fn sends_per_step<'a, F>(p: usize, steps: usize, program: F) -> Vec<ExpectedMsg>
where
    F: Fn(usize) -> Box<dyn Iterator<Item = Op> + 'a>,
{
    let mut per_step: Vec<ExpectedMsg> = Vec::new();
    for rank in 0..p {
        for op in program(rank) {
            if let Op::Send { to, bytes, phase } = op {
                per_step.push(ExpectedMsg {
                    src: rank as u32,
                    dst: to as u32,
                    phase,
                    count: bytes / PARTICLE_WIRE_BYTES as u64,
                });
            }
        }
    }
    let mut msgs = Vec::with_capacity(per_step.len() * steps);
    for _ in 0..steps {
        msgs.extend_from_slice(&per_step);
    }
    msgs
}

fn all_pairs_schedule(spec: &WireScheduleSpec, c: usize) -> Result<ExpectedSchedule, String> {
    ProcGrid::new_all_pairs(spec.p, c).map_err(|e| e.to_string())?;
    let params = AllPairsParams::new(spec.p, c, spec.n);
    let msgs = sends_per_step(spec.p, spec.steps, |rank| params.program(rank));
    Ok(ExpectedSchedule {
        msgs,
        size_checked: true,
        detail: format!(
            "ca-all-pairs n={} p={} c={} steps={}",
            spec.n, spec.p, c, spec.steps
        ),
    })
}

fn cutoff_schedule(
    spec: &WireScheduleSpec,
    c: usize,
    two_d: bool,
) -> Result<ExpectedSchedule, String> {
    let r_c = spec.cutoff.ok_or_else(|| {
        format!("{:?} needs a cutoff radius to size the window", spec.method)
    })?;
    let grid = ProcGrid::new(spec.p, c).map_err(|e| e.to_string())?;
    let teams = grid.teams();
    let periodic = spec.boundary == Boundary::Periodic;
    // Block sizes are data-dependent (re-assignment); any placeholder
    // works because count-only mode ignores payload sizes.
    let block_sizes: Vec<usize> = (0..teams)
        .map(|b| block_range(spec.n, teams, b).len())
        .collect();
    let msgs = match (two_d, periodic) {
        (false, false) => {
            let window = Window1d::from_cutoff(&spec.domain, teams, r_c);
            validate_cutoff(&window, teams, c).map_err(|e| e.to_string())?;
            let params = CutoffParams::new(grid, window, block_sizes);
            sends_per_step(spec.p, spec.steps, |rank| params.program(rank))
        }
        (false, true) => {
            let window = Window1dPeriodic::from_cutoff(&spec.domain, teams, r_c);
            validate_cutoff(&window, teams, c).map_err(|e| e.to_string())?;
            let params = CutoffParams::new(grid, window, block_sizes);
            sends_per_step(spec.p, spec.steps, |rank| params.program(rank))
        }
        (true, false) => {
            let (tx, ty) = team_grid_dims(teams);
            let window = Window2d::from_cutoff(&spec.domain, tx, ty, r_c);
            validate_cutoff(&window, teams, c).map_err(|e| e.to_string())?;
            let params = CutoffParams::new(grid, window, block_sizes);
            sends_per_step(spec.p, spec.steps, |rank| params.program(rank))
        }
        (true, true) => {
            let (tx, ty) = team_grid_dims(teams);
            let window = Window2dPeriodic::from_cutoff(&spec.domain, tx, ty, r_c);
            validate_cutoff(&window, teams, c).map_err(|e| e.to_string())?;
            let params = CutoffParams::new(grid, window, block_sizes);
            sends_per_step(spec.p, spec.steps, |rank| params.program(rank))
        }
    };
    Ok(ExpectedSchedule {
        msgs,
        size_checked: false,
        detail: format!(
            "{}{} n={} p={} c={} steps={} cutoff={}",
            if two_d { "ca-2d-cutoff" } else { "ca-1d-cutoff" },
            if periodic { " (periodic)" } else { "" },
            spec.n, spec.p, c, spec.steps, r_c
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_comm::Phase;

    fn spec(method: Method, n: usize, p: usize, steps: usize) -> WireScheduleSpec {
        WireScheduleSpec {
            method,
            n,
            p,
            steps,
            domain: Domain::unit(),
            boundary: Boundary::Reflective,
            cutoff: None,
        }
    }

    #[test]
    fn all_pairs_schedule_counts_scale_with_steps() {
        // p=4 c=1: 4 teams, 4 shift steps, no skew -> 16 sends/step.
        let one = expected_schedule(&spec(Method::CaAllPairs { c: 1 }, 32, 4, 1)).unwrap();
        assert!(one.size_checked);
        assert_eq!(one.msgs.len(), 16);
        assert!(one.msgs.iter().all(|m| m.phase == Phase::Shift));
        assert!(one.msgs.iter().all(|m| m.count == 8), "32/4 particles each");
        let three = expected_schedule(&spec(Method::CaAllPairs { c: 1 }, 32, 4, 3)).unwrap();
        assert_eq!(three.msgs.len(), 48);
    }

    #[test]
    fn replicated_all_pairs_schedule_includes_skew() {
        // p=8 c=2: 4 teams, rows k=1 skew (4 sends), 2 shift steps x 8.
        let s = expected_schedule(&spec(Method::CaAllPairs { c: 2 }, 24, 8, 1)).unwrap();
        let skews = s.msgs.iter().filter(|m| m.phase == Phase::Skew).count();
        let shifts = s.msgs.iter().filter(|m| m.phase == Phase::Shift).count();
        assert_eq!(skews, 4);
        assert_eq!(shifts, 16);
    }

    #[test]
    fn cutoff_schedule_is_count_only() {
        let mut sp = spec(Method::Ca1dCutoff { c: 1 }, 40, 4, 2);
        sp.cutoff = Some(0.25);
        let s = expected_schedule(&sp).unwrap();
        assert!(!s.size_checked);
        assert!(!s.msgs.is_empty());
        assert!(s.detail.contains("ca-1d-cutoff"));
    }

    #[test]
    fn cutoff_without_radius_is_rejected() {
        let sp = spec(Method::Ca1dCutoff { c: 1 }, 40, 4, 2);
        assert!(expected_schedule(&sp).is_err());
    }

    #[test]
    fn unsupported_methods_are_rejected() {
        let err = expected_schedule(&spec(Method::ParticleRing, 16, 4, 1)).unwrap_err();
        assert!(err.contains("no communication-schedule twin"));
    }
}
