//! Periodic interaction windows — an extension beyond the paper.
//!
//! The paper's experiments use a non-periodic domain (its §IV.D load
//! imbalance comes precisely from boundary teams), but molecular-dynamics
//! production runs are usually periodic. Under periodic boundaries the
//! team ring wraps, every window offset is always valid, buffers never
//! fall off an edge (so no home-route re-injection is needed), and the
//! load is perfectly balanced for uniform densities — the cleanest setting
//! for Algorithm 2.
//!
//! A periodic window of size `W ≤ teams` enumerates offsets
//! `0, 1, …, ⌈(W-1)/2⌉·…` wrapped as `O[j] = j` for `j ≤ (W-1)/2` and
//! `j − W` otherwise, so for `W = teams` the window degenerates into an
//! all-pairs traversal covering every team exactly once.

use nbody_physics::Domain;

use crate::window::Window;

/// A 1D window on a periodic ring of teams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window1dPeriodic {
    teams: usize,
    w: usize,
}

impl Window1dPeriodic {
    /// Window spanning `m` teams on each side of the owner (size
    /// `min(2m+1, teams)` — at most one visit per team).
    pub fn new(teams: usize, m: usize) -> Self {
        assert!(teams > 0);
        Window1dPeriodic {
            teams,
            w: (2 * m + 1).min(teams),
        }
    }

    /// Derive the span from a cutoff radius (minimum-image distances): the
    /// same `floor(r_c/w) + 1` slab bound as the non-periodic window.
    pub fn from_cutoff(domain: &Domain, teams: usize, r_c: f64) -> Self {
        assert!(r_c > 0.0);
        let slab = domain.length_x() / teams as f64;
        let m = (r_c / slab).floor() as usize + 1;
        Window1dPeriodic::new(teams, m)
    }

    #[inline]
    fn offset(&self, j: usize) -> i64 {
        debug_assert!(j < self.w);
        if j <= (self.w - 1) / 2 {
            j as i64
        } else {
            j as i64 - self.w as i64
        }
    }

    #[inline]
    fn wrap(&self, t: i64) -> usize {
        t.rem_euclid(self.teams as i64) as usize
    }
}

impl Window for Window1dPeriodic {
    fn len(&self) -> usize {
        self.w
    }

    fn teams(&self) -> usize {
        self.teams
    }

    fn apply(&self, team: usize, j: usize) -> Option<usize> {
        Some(self.wrap(team as i64 + self.offset(j)))
    }

    fn apply_back(&self, team: usize, j: usize) -> Option<usize> {
        Some(self.wrap(team as i64 - self.offset(j)))
    }

    fn is_periodic(&self) -> bool {
        true
    }
}

/// A 2D window on a periodic torus of `tx × ty` teams (row-major ids).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window2dPeriodic {
    tx: usize,
    ty: usize,
    wx: usize,
    wy: usize,
}

impl Window2dPeriodic {
    /// Window spanning `mx`/`my` cells per direction, each axis capped at
    /// one visit per team row/column.
    pub fn new(tx: usize, ty: usize, mx: usize, my: usize) -> Self {
        assert!(tx > 0 && ty > 0);
        Window2dPeriodic {
            tx,
            ty,
            wx: (2 * mx + 1).min(tx),
            wy: (2 * my + 1).min(ty),
        }
    }

    /// Derive spans from a cutoff radius (minimum image per axis).
    pub fn from_cutoff(domain: &Domain, tx: usize, ty: usize, r_c: f64) -> Self {
        assert!(r_c > 0.0);
        let cx = domain.length_x() / tx as f64;
        let cy = domain.length_y() / ty as f64;
        Window2dPeriodic::new(
            tx,
            ty,
            (r_c / cx).floor() as usize + 1,
            (r_c / cy).floor() as usize + 1,
        )
    }

    #[inline]
    fn axis_offset(j: usize, w: usize) -> i64 {
        if j <= (w - 1) / 2 {
            j as i64
        } else {
            j as i64 - w as i64
        }
    }

    #[inline]
    fn offset2(&self, j: usize) -> (i64, i64) {
        (
            Self::axis_offset(j % self.wx, self.wx),
            Self::axis_offset(j / self.wx, self.wy),
        )
    }

    #[inline]
    fn wrap2(&self, cx: i64, cy: i64) -> usize {
        let x = cx.rem_euclid(self.tx as i64) as usize;
        let y = cy.rem_euclid(self.ty as i64) as usize;
        y * self.tx + x
    }
}

impl Window for Window2dPeriodic {
    fn len(&self) -> usize {
        self.wx * self.wy
    }

    fn teams(&self) -> usize {
        self.tx * self.ty
    }

    fn apply(&self, team: usize, j: usize) -> Option<usize> {
        let (ox, oy) = self.offset2(j);
        Some(self.wrap2((team % self.tx) as i64 + ox, (team / self.tx) as i64 + oy))
    }

    fn apply_back(&self, team: usize, j: usize) -> Option<usize> {
        let (ox, oy) = self.offset2(j);
        Some(self.wrap2((team % self.tx) as i64 - ox, (team / self.tx) as i64 - oy))
    }

    fn is_periodic(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn periodic_1d_never_clips() {
        let w = Window1dPeriodic::new(8, 2);
        assert_eq!(w.len(), 5);
        assert!(w.is_periodic());
        for t in 0..8 {
            for j in 0..w.len() {
                assert!(w.apply(t, j).is_some());
                assert!(w.apply_back(t, j).is_some());
            }
        }
        // Wrap-around: team 7 + offset 1 = team 0.
        assert_eq!(w.apply(7, 1), Some(0));
        assert_eq!(w.apply(0, 4), Some(7)); // offset -1
    }

    #[test]
    fn periodic_1d_offsets_distinct() {
        for (teams, m) in [(8usize, 2usize), (8, 3), (8, 10), (7, 3), (9, 4), (6, 5)] {
            let w = Window1dPeriodic::new(teams, m);
            assert!(w.len() <= teams);
            for t in 0..teams {
                let hits: Vec<usize> = (0..w.len()).map(|j| w.apply(t, j).unwrap()).collect();
                let set: HashSet<usize> = hits.iter().copied().collect();
                assert_eq!(set.len(), hits.len(), "teams={teams} m={m}: {hits:?}");
            }
        }
    }

    #[test]
    fn periodic_1d_full_window_covers_all_teams() {
        // Even team count: the window [-W/2, W/2-1] must reach every team.
        for teams in [4usize, 5, 6, 8] {
            let w = Window1dPeriodic::new(teams, teams); // clamped to W=teams
            assert_eq!(w.len(), teams);
            let covered: HashSet<usize> = (0..w.len()).map(|j| w.apply(0, j).unwrap()).collect();
            assert_eq!(covered.len(), teams, "teams={teams}");
        }
    }

    #[test]
    fn periodic_1d_apply_back_inverts() {
        let w = Window1dPeriodic::new(9, 3);
        for t in 0..9 {
            for j in 0..w.len() {
                let u = w.apply(t, j).unwrap();
                assert_eq!(w.apply_back(u, j), Some(t));
            }
        }
    }

    #[test]
    fn periodic_2d_wraps_both_axes() {
        let w = Window2dPeriodic::new(4, 3, 1, 1);
        assert_eq!(w.len(), 9);
        assert_eq!(w.teams(), 12);
        for t in 0..12 {
            let hits: HashSet<usize> = (0..9).map(|j| w.apply(t, j).unwrap()).collect();
            assert_eq!(hits.len(), 9, "team {t}: full 3x3 neighborhood via wrap");
        }
        // Corner team 0 = (0,0): offset (-1,-1) reaches (3,2) = team 11.
        let j = (w.wx - 1) + w.wx * (w.wy - 1);
        assert_eq!(w.apply(0, j), Some(11));
    }

    #[test]
    fn periodic_2d_apply_back_inverts() {
        let w = Window2dPeriodic::new(5, 4, 2, 1);
        for t in 0..w.teams() {
            for j in 0..w.len() {
                let u = w.apply(t, j).unwrap();
                assert_eq!(w.apply_back(u, j), Some(t), "t={t} j={j}");
            }
        }
    }

    #[test]
    fn from_cutoff_covers_minimum_image_pairs() {
        let d = Domain::unit();
        // rc = 0.3 on 8 slabs (width 0.125): m = 3, W = 7.
        let w = Window1dPeriodic::from_cutoff(&d, 8, 0.3);
        assert_eq!(w.len(), 7);
        // Wrap pairs: team 0 and team 7 are adjacent under min image.
        let reachable: HashSet<usize> = (0..w.len()).map(|j| w.apply_back(0, j).unwrap()).collect();
        assert!(reachable.contains(&7) && reachable.contains(&5));
    }
}
