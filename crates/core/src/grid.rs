//! The `p/c × c` processor grid of Algorithm 1 and 2.
//!
//! The paper arranges `p` processors into `p/c` columns ("teams") and `c`
//! rows (the replication dimension). Team leaders (row 0) own the particle
//! subsets between timesteps; broadcasts and reductions run down columns,
//! skews and shifts run along rows.

use std::fmt;

use nbody_comm::Communicator;

/// Errors from invalid grid parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GridError {
    /// `c` must be at least 1.
    ZeroReplication,
    /// `c` must divide `p` so rows are complete.
    ReplicationDoesNotDivide {
        /// Number of processors.
        p: usize,
        /// Replication factor.
        c: usize,
    },
    /// For the all-pairs algorithm, the shift loop runs `p/c²` full steps, so
    /// `c` must also divide the team count `p/c` (equivalently `c² | p`).
    StepsNotIntegral {
        /// Number of processors.
        p: usize,
        /// Replication factor.
        c: usize,
    },
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::ZeroReplication => write!(f, "replication factor c must be >= 1"),
            GridError::ReplicationDoesNotDivide { p, c } => {
                write!(f, "replication factor c={c} must divide p={p}")
            }
            GridError::StepsNotIntegral { p, c } => write!(
                f,
                "all-pairs grid needs c^2 | p (p={p}, c={c} gives fractional p/c^2)"
            ),
        }
    }
}

impl std::error::Error for GridError {}

/// Geometry of the `p/c × c` processor grid.
///
/// World rank `r` maps to row `r / teams` and team (column) `r % teams`,
/// so row 0 — the team leaders — are world ranks `0..teams`, matching the
/// convention that leaders hold the particles between steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcGrid {
    p: usize,
    c: usize,
}

impl ProcGrid {
    /// Grid for the all-pairs algorithm: requires `c | p` **and** `c² | p`
    /// (so the shift loop runs exactly `p/c²` steps).
    pub fn new_all_pairs(p: usize, c: usize) -> Result<Self, GridError> {
        let g = Self::new(p, c)?;
        if g.teams() % c != 0 {
            return Err(GridError::StepsNotIntegral { p, c });
        }
        Ok(g)
    }

    /// Grid for the cutoff algorithms: requires only `c | p`; the window
    /// traversal handles partial last steps.
    pub fn new(p: usize, c: usize) -> Result<Self, GridError> {
        if c == 0 {
            return Err(GridError::ZeroReplication);
        }
        if p == 0 || !p.is_multiple_of(c) {
            return Err(GridError::ReplicationDoesNotDivide { p, c });
        }
        Ok(ProcGrid { p, c })
    }

    /// Total processors `p`.
    #[inline]
    pub fn p(&self) -> usize {
        self.p
    }

    /// Replication factor `c`.
    #[inline]
    pub fn c(&self) -> usize {
        self.c
    }

    /// Number of teams (columns), `p/c`.
    #[inline]
    pub fn teams(&self) -> usize {
        self.p / self.c
    }

    /// Shift steps of the all-pairs algorithm, `p/c²`.
    #[inline]
    pub fn all_pairs_steps(&self) -> usize {
        self.teams() / self.c
    }

    /// Team (column) index of a world rank.
    #[inline]
    pub fn team_of(&self, world_rank: usize) -> usize {
        world_rank % self.teams()
    }

    /// Row index of a world rank.
    #[inline]
    pub fn row_of(&self, world_rank: usize) -> usize {
        world_rank / self.teams()
    }

    /// World rank at `(team, row)`.
    #[inline]
    pub fn rank_at(&self, team: usize, row: usize) -> usize {
        debug_assert!(team < self.teams() && row < self.c);
        row * self.teams() + team
    }

    /// Valid replication factors for the all-pairs algorithm on `p`
    /// processors: every `c` with `c² | p`, i.e. `c = 1 .. √p` in the paper's
    /// notation (only divisibility-compatible values).
    pub fn valid_all_pairs_factors(p: usize) -> Vec<usize> {
        (1..=p)
            .take_while(|c| c * c <= p)
            .filter(|c| p.is_multiple_of(c * c))
            .collect()
    }
}

/// The communicators of one rank's position in the grid: its team column
/// (broadcast/reduce) and its row (skew/shift).
pub struct GridComms<C: Communicator> {
    /// Grid geometry.
    pub grid: ProcGrid,
    /// Column communicator: size `c`, rank = row index, rank 0 = leader.
    pub col: C,
    /// Row communicator: size `teams`, rank = team index.
    pub row: C,
}

impl<C: Communicator> GridComms<C> {
    /// Split a world communicator of size `grid.p()` into column and row
    /// communicators. Collective: every world rank must call it.
    pub fn new(world: &C, grid: ProcGrid) -> Self {
        assert_eq!(
            world.size(),
            grid.p(),
            "world size {} != grid p {}",
            world.size(),
            grid.p()
        );
        let team = grid.team_of(world.rank());
        let row_idx = grid.row_of(world.rank());
        let col = world.split(team, row_idx);
        let row = world.split(row_idx, team);
        GridComms { grid, col, row }
    }

    /// This rank's team (column) index.
    #[inline]
    pub fn team(&self) -> usize {
        self.row.rank()
    }

    /// This rank's row index (position along the replication dimension).
    #[inline]
    pub fn row_index(&self) -> usize {
        self.col.rank()
    }

    /// Whether this rank is its team's leader (row 0). Leaders own particle
    /// subsets between timesteps.
    #[inline]
    pub fn is_leader(&self) -> bool {
        self.col.rank() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_comm::run_ranks;

    #[test]
    fn valid_grid_geometry() {
        let g = ProcGrid::new_all_pairs(16, 2).unwrap();
        assert_eq!(g.p(), 16);
        assert_eq!(g.c(), 2);
        assert_eq!(g.teams(), 8);
        assert_eq!(g.all_pairs_steps(), 4);
    }

    #[test]
    fn extreme_factors_degenerate_correctly() {
        // c = 1: particle decomposition; one row, p teams, p shift steps.
        let g = ProcGrid::new_all_pairs(8, 1).unwrap();
        assert_eq!(g.teams(), 8);
        assert_eq!(g.all_pairs_steps(), 8);
        // c = sqrt(p): force decomposition; one shift step.
        let g = ProcGrid::new_all_pairs(16, 4).unwrap();
        assert_eq!(g.teams(), 4);
        assert_eq!(g.all_pairs_steps(), 1);
    }

    #[test]
    fn invalid_factors_rejected() {
        assert_eq!(
            ProcGrid::new(8, 0),
            Err(GridError::ZeroReplication)
        );
        assert_eq!(
            ProcGrid::new(8, 3),
            Err(GridError::ReplicationDoesNotDivide { p: 8, c: 3 })
        );
        // 8 % 2 == 0 but 8 / 2 = 4 teams, 4 % 2 == 0 — fine:
        assert!(ProcGrid::new_all_pairs(8, 2).is_ok());
        // 32: c=4 -> teams=8, 8%4 == 0 ok; c=8 -> 8%8... c=8 doesn't divide
        // into teams=4: rejected for all-pairs.
        assert_eq!(
            ProcGrid::new_all_pairs(32, 8),
            Err(GridError::StepsNotIntegral { p: 32, c: 8 })
        );
        assert!(ProcGrid::new(32, 8).is_ok(), "cutoff grid allows it");
    }

    #[test]
    fn rank_mapping_roundtrips() {
        let g = ProcGrid::new(12, 3).unwrap();
        for r in 0..12 {
            let (t, row) = (g.team_of(r), g.row_of(r));
            assert!(t < g.teams() && row < g.c());
            assert_eq!(g.rank_at(t, row), r);
        }
        // Leaders are world ranks 0..teams.
        for t in 0..g.teams() {
            assert_eq!(g.rank_at(t, 0), t);
        }
    }

    #[test]
    fn valid_all_pairs_factors_enumeration() {
        assert_eq!(ProcGrid::valid_all_pairs_factors(16), vec![1, 2, 4]);
        assert_eq!(ProcGrid::valid_all_pairs_factors(64), vec![1, 2, 4, 8]);
        assert_eq!(ProcGrid::valid_all_pairs_factors(12), vec![1, 2]);
        assert_eq!(ProcGrid::valid_all_pairs_factors(1), vec![1]);
    }

    #[test]
    fn grid_comms_positions() {
        let grid = ProcGrid::new(8, 2).unwrap();
        let out = run_ranks(8, |world| {
            let gc = GridComms::new(world, grid);
            (gc.team(), gc.row_index(), gc.is_leader())
        });
        for (r, &(team, row, leader)) in out.iter().enumerate() {
            assert_eq!(team, r % 4);
            assert_eq!(row, r / 4);
            assert_eq!(leader, r < 4);
        }
    }

    #[test]
    fn grid_error_messages_are_informative() {
        let e = ProcGrid::new_all_pairs(32, 8).unwrap_err();
        assert!(e.to_string().contains("c^2 | p"));
        let e = ProcGrid::new(8, 3).unwrap_err();
        assert!(e.to_string().contains("must divide"));
    }
}
