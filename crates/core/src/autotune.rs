//! Replication-factor autotuning.
//!
//! The paper leaves "open the question of how to select the replication
//! factor c, which … can be autotuned at runtime by trying multiple
//! factors" (§V). This module implements both suggested flavors:
//!
//! * **Model-guided** ([`autotune_all_pairs`], [`autotune_cutoff_1d`]):
//!   replay each candidate's schedule through the discrete-event machine
//!   model and pick the smallest makespan — deterministic and free of
//!   timing noise.
//! * **Measurement-guided** ([`pick_fastest`]): time a few real steps per
//!   candidate (on whatever runtime the caller closes over) and keep the
//!   winner, exactly the paper's "trying multiple factors" loop.

use nbody_netsim::{simulate, Machine};

use crate::dist::block_range;
use crate::grid::ProcGrid;
use crate::schedule::{AllPairsParams, CutoffParams};
use crate::window::Window1d;

/// One candidate's predicted cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// Replication factor.
    pub c: usize,
    /// Predicted execution time per timestep (seconds).
    pub predicted_secs: f64,
}

/// Outcome of a tuning sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Autotune {
    /// The winning replication factor.
    pub best_c: usize,
    /// Every candidate with its predicted time, in increasing `c`.
    pub candidates: Vec<Candidate>,
}

impl Autotune {
    fn from_candidates(candidates: Vec<Candidate>) -> Self {
        assert!(!candidates.is_empty(), "no valid replication factors");
        let best_c = candidates
            .iter()
            .min_by(|a, b| a.predicted_secs.total_cmp(&b.predicted_secs))
            .unwrap()
            .c;
        Autotune { best_c, candidates }
    }

    /// Predicted time of the winner.
    pub fn best_time(&self) -> f64 {
        self.candidates
            .iter()
            .find(|k| k.c == self.best_c)
            .unwrap()
            .predicted_secs
    }
}

/// Sweep every valid all-pairs replication factor for `(p, n)` on
/// `machine` using the simulated schedule, and pick the fastest.
pub fn autotune_all_pairs(machine: &Machine, p: usize, n: usize) -> Autotune {
    let candidates = ProcGrid::valid_all_pairs_factors(p)
        .into_iter()
        .map(|c| {
            let params = AllPairsParams::new(p, c, n);
            let rep = simulate(machine, p, |r| params.program(r));
            Candidate {
                c,
                predicted_secs: rep.makespan,
            }
        })
        .collect();
    Autotune::from_candidates(candidates)
}

/// Sweep replication factors for the 1D cutoff algorithm with cutoff
/// radius `rc_fraction` of the domain length, assuming a near-uniform
/// particle distribution.
pub fn autotune_cutoff_1d(machine: &Machine, p: usize, n: usize, rc_fraction: f64) -> Autotune {
    assert!(rc_fraction > 0.0 && rc_fraction <= 1.0);
    let domain = nbody_physics::Domain::unit();
    let candidates: Vec<Candidate> = (1..=p)
        .filter(|c| p.is_multiple_of(*c))
        .filter_map(|c| {
            let grid = ProcGrid::new(p, c).ok()?;
            let teams = grid.teams();
            let window = Window1d::from_cutoff(&domain, teams, rc_fraction);
            crate::cutoff::validate_cutoff(&window, teams, c).ok()?;
            let sizes: Vec<usize> = (0..teams).map(|t| block_range(n, teams, t).len()).collect();
            let params = CutoffParams::new(grid, window, sizes);
            let rep = simulate(machine, p, |r| params.program(r));
            Some(Candidate {
                c,
                predicted_secs: rep.makespan,
            })
        })
        .collect();
    Autotune::from_candidates(candidates)
}

/// Measurement-guided tuning: run `trials` invocations of `step` per
/// candidate and return the candidate with the smallest mean wall time.
/// `step` receives the candidate value; callers close over their runtime.
pub fn pick_fastest<T: Copy>(candidates: &[T], trials: usize, mut step: impl FnMut(T)) -> T {
    assert!(!candidates.is_empty() && trials > 0);
    let mut best = candidates[0];
    let mut best_time = f64::INFINITY;
    for &cand in candidates {
        let start = std::time::Instant::now();
        for _ in 0..trials {
            step(cand);
        }
        let elapsed = start.elapsed().as_secs_f64() / trials as f64;
        if elapsed < best_time {
            best_time = elapsed;
            best = cand;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_netsim::{hopper, intrepid};

    #[test]
    fn all_pairs_tuning_prefers_replication_at_scale() {
        // Communication-dominated regime: small n, sizeable p. c = 1 (pure
        // particle decomposition) should never win.
        let tune = autotune_all_pairs(&hopper(), 256, 1024);
        assert!(tune.best_c > 1, "{tune:?}");
        assert_eq!(
            tune.candidates.iter().map(|k| k.c).collect::<Vec<_>>(),
            vec![1, 2, 4, 8, 16]
        );
        // Times are all positive and the winner is minimal.
        for k in &tune.candidates {
            assert!(k.predicted_secs > 0.0);
            assert!(k.predicted_secs >= tune.best_time() - 1e-12);
        }
    }

    #[test]
    fn cutoff_tuning_respects_window_constraint() {
        let tune = autotune_cutoff_1d(&intrepid(), 64, 4096, 0.25);
        // Candidates must all divide p and fit in their windows.
        for k in &tune.candidates {
            assert_eq!(64 % k.c, 0);
        }
        assert!(tune.candidates.len() >= 2);
        assert!(tune.best_time() > 0.0);
    }

    #[test]
    fn pick_fastest_selects_cheapest_step() {
        // Steps that sleep proportionally to the candidate value, with
        // margins wide enough to survive a loaded test machine.
        let best = pick_fastest(&[60u64, 5, 25], 1, |c| {
            std::thread::sleep(std::time::Duration::from_millis(c));
        });
        assert_eq!(best, 5);
    }

    #[test]
    #[should_panic(expected = "no valid replication factors")]
    fn empty_candidates_rejected() {
        Autotune::from_candidates(Vec::new());
    }
}
