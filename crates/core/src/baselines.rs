//! Baseline decompositions from §II of the paper.
//!
//! * [`particle_ring_forces`] — Plimpton's **particle decomposition**: each
//!   of `p` ranks owns `n/p` particles and circulates a copy around a ring.
//!   `S = O(p)`, `W = O(n)`.
//! * [`naive_allgather_forces`] — the same decomposition implemented with a
//!   single allgather collective. On Intrepid this is the "`c=1 (tree)`"
//!   variant of Fig. 2c/2d, which exploits the BlueGene/P hardware
//!   collective network.
//! * [`force_decomposition_forces`] — Plimpton's **force decomposition** on
//!   a `√p × √p` grid: broadcast target and source blocks from the diagonal,
//!   one block-on-block update, reduce forces along rows.
//!   `S = O(log p)`, `W = O(n/√p)`.
//!
//! The CA algorithm (Algorithm 1) interpolates between the first and last of
//! these as `c` goes from `1` to `√p`.

use nbody_comm::{Communicator, Phase};
use nbody_physics::{Boundary, Domain, ForceLaw, Particle};

use crate::kernel::{accumulate_block, combine_forces};

/// Tag for ring-shift messages.
const TAG_RING: u64 = 0x20;

/// Particle decomposition: rank `r` owns `my` and accumulates forces from
/// all `n` particles by passing source copies around the ring `p - 1` times.
/// `my` must hold this rank's subset on entry; forces accumulate in place.
pub fn particle_ring_forces<C: Communicator, F: ForceLaw>(
    world: &C,
    my: &mut [Particle],
    law: &F,
    domain: &Domain,
    boundary: Boundary,
) {
    let p = world.size();
    let rank = world.rank();

    // Own block first (self-pairs are skipped inside the kernel).
    world.set_phase(Phase::Other);
    let mut exch = my.to_vec();
    accumulate_block(my, &exch, law, domain, boundary);

    // p - 1 ring shifts; after shift s, we hold the block of rank - s.
    for s in 1..p {
        world.set_phase(Phase::Shift);
        let dst = (rank + 1) % p;
        let src = (rank + p - 1) % p;
        exch = world.sendrecv(dst, src, TAG_RING + s as u64, &exch);
        world.set_phase(Phase::Other);
        accumulate_block(my, &exch, law, domain, boundary);
    }
}

/// Particle decomposition via one allgather: every rank obtains all `n`
/// particles, then updates its own subset locally. The collective-network
/// (`tree`) variant of the naive algorithm in Fig. 2c/2d.
pub fn naive_allgather_forces<C: Communicator, F: ForceLaw>(
    world: &C,
    my: &mut [Particle],
    law: &F,
    domain: &Domain,
    boundary: Boundary,
) {
    world.set_phase(Phase::Broadcast);
    let blocks = world.allgather(my);
    world.set_phase(Phase::Other);
    for block in &blocks {
        accumulate_block(my, block, law, domain, boundary);
    }
}

/// Plimpton's force decomposition on a `q × q` grid (`p = q²`).
///
/// Particles live on the diagonal: rank `(i, i)` owns block `i` (`st` must
/// be that block on diagonal ranks and empty elsewhere). Rank `(i, j)`
/// receives target block `i` down its row and source block `j` down its
/// column, computes the `(i, j)` interaction block, and row-reduces forces
/// back to the diagonal.
pub fn force_decomposition_forces<C: Communicator, F: ForceLaw>(
    world: &C,
    st: &mut Vec<Particle>,
    law: &F,
    domain: &Domain,
    boundary: Boundary,
) {
    let p = world.size();
    let q = (p as f64).sqrt().round() as usize;
    assert_eq!(q * q, p, "force decomposition needs a square processor count, got {p}");
    let rank = world.rank();
    let (i, j) = (rank / q, rank % q);
    debug_assert!(i == j || st.is_empty(), "particles live on the diagonal");

    // Row communicator: fixed i, ranked by j. Column: fixed j, ranked by i.
    let row = world.split(i, j);
    let col = world.split(j, i);

    // Targets: block i, broadcast along the row from the diagonal (j = i).
    world.set_phase(Phase::Broadcast);
    let mut targets = if i == j { st.clone() } else { Vec::new() };
    row.bcast(i, &mut targets);

    // Sources: block j, broadcast along the column from the diagonal (i = j).
    let mut sources = if i == j { st.clone() } else { Vec::new() };
    col.bcast(j, &mut sources);

    world.set_phase(Phase::Other);
    accumulate_block(&mut targets, &sources, law, domain, boundary);

    // Sum the row's partial forces back onto the diagonal.
    world.set_phase(Phase::Reduce);
    row.reduce(i, &mut targets, combine_forces);
    if i == j {
        *st = targets;
    } else {
        st.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::id_block_subset;
    use nbody_comm::run_ranks;
    use nbody_physics::{init, reference, Counting, RepulsiveInverseSquare};

    fn serial(n: usize, seed: u64, law: &impl ForceLaw) -> Vec<Particle> {
        let domain = Domain::unit();
        let mut all = init::uniform(n, &domain, seed);
        reference::accumulate_forces(&mut all, law, &domain, Boundary::Open);
        all
    }

    fn check_against_serial(got: &[Particle], want: &[Particle], tol: f64, label: &str) {
        assert_eq!(got.len(), want.len(), "{label}");
        for (g, w) in got.iter().zip(want) {
            assert_eq!(g.id, w.id, "{label}");
            let err = (g.force - w.force).norm();
            assert!(
                err <= tol * w.force.norm().max(1e-30),
                "{label}: id={} err={err}",
                g.id
            );
        }
    }

    #[test]
    fn particle_ring_counting_exact() {
        let domain = Domain::unit();
        for p in [1, 2, 3, 5, 8] {
            let n = 19;
            let out = run_ranks(p, |world| {
                let all = init::uniform(n, &domain, 11);
                let mut my = id_block_subset(&all, p, world.rank());
                particle_ring_forces(world, &mut my, &Counting, &domain, Boundary::Open);
                my
            });
            let mut flat: Vec<Particle> = out.into_iter().flatten().collect();
            flat.sort_by_key(|q| q.id);
            for q in &flat {
                assert_eq!(q.force.x, (n - 1) as f64, "p={p} id={}", q.id);
            }
        }
    }

    #[test]
    fn particle_ring_sends_p_minus_1_messages() {
        let domain = Domain::unit();
        let p = 6;
        let stats = run_ranks(p, |world| {
            let all = init::uniform(12, &domain, 1);
            let mut my = id_block_subset(&all, p, world.rank());
            particle_ring_forces(world, &mut my, &Counting, &domain, Boundary::Open);
            world.stats()
        });
        for s in &stats {
            assert_eq!(s.phase(Phase::Shift).messages, (p - 1) as u64);
        }
    }

    #[test]
    fn naive_allgather_matches_serial() {
        let domain = Domain::unit();
        let law = RepulsiveInverseSquare::default();
        let want = serial(20, 3, &law);
        let p = 4;
        let out = run_ranks(p, |world| {
            let all = init::uniform(20, &domain, 3);
            let mut my = id_block_subset(&all, p, world.rank());
            naive_allgather_forces(world, &mut my, &law, &domain, Boundary::Open);
            my
        });
        let mut flat: Vec<Particle> = out.into_iter().flatten().collect();
        flat.sort_by_key(|q| q.id);
        check_against_serial(&flat, &want, 1e-12, "allgather");
    }

    #[test]
    fn force_decomposition_matches_serial() {
        let domain = Domain::unit();
        let law = RepulsiveInverseSquare::default();
        for q in [1usize, 2, 3, 4] {
            let p = q * q;
            let n = 21;
            let want = serial(n, 5, &law);
            let out = run_ranks(p, |world| {
                let all = init::uniform(n, &domain, 5);
                let (i, j) = (world.rank() / q, world.rank() % q);
                let mut st = if i == j {
                    id_block_subset(&all, q, i)
                } else {
                    Vec::new()
                };
                force_decomposition_forces(world, &mut st, &law, &domain, Boundary::Open);
                st
            });
            let mut flat: Vec<Particle> = out.into_iter().flatten().collect();
            flat.sort_by_key(|p| p.id);
            check_against_serial(&flat, &want, 1e-12, &format!("force-decomp q={q}"));
        }
    }

    #[test]
    fn force_decomposition_counting_exact() {
        let domain = Domain::unit();
        let q = 3;
        let n = 17;
        let out = run_ranks(q * q, |world| {
            let all = init::uniform(n, &domain, 8);
            let (i, j) = (world.rank() / q, world.rank() % q);
            let mut st = if i == j {
                id_block_subset(&all, q, i)
            } else {
                Vec::new()
            };
            force_decomposition_forces(world, &mut st, &Counting, &domain, Boundary::Open);
            st
        });
        let flat: Vec<Particle> = out.into_iter().flatten().collect();
        assert_eq!(flat.len(), n);
        for p in &flat {
            assert_eq!(p.force.x, (n - 1) as f64);
        }
    }

    #[test]
    #[should_panic(expected = "square processor count")]
    fn force_decomposition_rejects_nonsquare() {
        run_ranks(6, |world| {
            let domain = Domain::unit();
            let mut st = Vec::new();
            force_decomposition_forces(
                world,
                &mut st,
                &Counting,
                &domain,
                Boundary::Open,
            );
        });
    }
}

/// Tag for the returning force buffer of the symmetric ring.
const TAG_RING_RETURN: u64 = 0x800;

/// Particle decomposition exploiting Newton's third law — the optimization
/// the paper explicitly does *not* apply ("we do not apply optimizations
/// to exploit the symmetry", §III.C), included here as a contrast.
///
/// Plimpton's half-ring: blocks travel only `⌈(p−1)/2⌉` hops; at each hop
/// the host computes the pair block once and accumulates **both** `f_ij`
/// into its own particles and `−f_ji` into the travelling copy. One final
/// message returns each travelling buffer's accumulated forces to its home
/// rank. Compute halves; shift messages halve (plus one return); only
/// valid for symmetric laws.
pub fn particle_ring_symmetric_forces<C: Communicator, F: ForceLaw>(
    world: &C,
    my: &mut [Particle],
    law: &F,
    domain: &Domain,
    boundary: Boundary,
) {
    assert!(
        law.is_symmetric(),
        "the half-ring optimization requires a symmetric force law"
    );
    let p = world.size();
    let rank = world.rank();

    // Own block.
    world.set_phase(Phase::Other);
    let own = my.to_vec();
    accumulate_block(my, &own, law, domain, boundary);

    if p == 1 {
        return;
    }

    // Travel ⌈(p-1)/2⌉ hops. When p is even, the final hop is shared: the
    // pair (r, r + p/2) would otherwise be computed from both sides, so
    // only the lower rank of each antipodal pair computes it.
    let hops = p / 2;
    let mut exch = own.clone();
    for s in 1..=hops {
        world.set_phase(Phase::Shift);
        let dst = (rank + 1) % p;
        let src = (rank + p - 1) % p;
        exch = world.sendrecv(dst, src, TAG_RING + s as u64, &exch);
        let origin = (rank + p - s) % p; // home rank of the visiting block

        let full_pair = !(p.is_multiple_of(2) && s == hops);
        if full_pair || origin > rank {
            world.set_phase(Phase::Other);
            // Both directions from one evaluation: f_ij on my particles,
            // the reaction −f_ij accumulated into the travelling copy.
            for t in my.iter_mut() {
                let mut acc = t.force;
                for s_p in exch.iter_mut() {
                    if t.id == s_p.id {
                        continue;
                    }
                    let disp = boundary.displacement(domain, t.pos, s_p.pos);
                    let f = law.force(t, s_p, disp);
                    acc += f;
                    s_p.force -= f;
                }
                t.force = acc;
            }
        }
    }

    // Return the travelling buffer's reaction forces to its home.
    world.set_phase(Phase::Reduce);
    let origin = (rank + p - hops) % p;
    let returned: Vec<Particle> = {
        let home_of_mine = (rank + hops) % p; // who holds my block now
        world.send(origin, TAG_RING_RETURN, &exch);
        world.recv(home_of_mine, TAG_RING_RETURN)
    };
    assert_eq!(returned.len(), my.len());
    for (mine, ret) in my.iter_mut().zip(&returned) {
        debug_assert_eq!(mine.id, ret.id);
        mine.force += ret.force;
    }
}

#[cfg(test)]
mod symmetric_ring_tests {
    use super::*;
    use crate::dist::id_block_subset;
    use nbody_comm::run_ranks;
    use nbody_physics::{init, reference, Counting, Gravity, RepulsiveInverseSquare};

    fn run_symmetric(p: usize, n: usize, seed: u64) -> Vec<Particle> {
        let domain = Domain::unit();
        let law = RepulsiveInverseSquare::default();
        let out = run_ranks(p, |world| {
            let all = init::uniform(n, &domain, seed);
            let mut my = id_block_subset(&all, p, world.rank());
            particle_ring_symmetric_forces(world, &mut my, &law, &domain, Boundary::Open);
            my
        });
        let mut flat: Vec<Particle> = out.into_iter().flatten().collect();
        flat.sort_by_key(|q| q.id);
        flat
    }

    #[test]
    fn symmetric_ring_matches_serial() {
        let domain = Domain::unit();
        let law = RepulsiveInverseSquare::default();
        for (p, n) in [(2usize, 10usize), (3, 15), (4, 16), (5, 21), (8, 24), (7, 23)] {
            let mut want = init::uniform(n, &domain, 77);
            reference::accumulate_forces(&mut want, &law, &domain, Boundary::Open);
            let got = run_symmetric(p, n, 77);
            assert_eq!(got.len(), n, "p={p}");
            for (g, w) in got.iter().zip(&want) {
                let err = (g.force - w.force).norm();
                assert!(
                    err <= 1e-12 * w.force.norm().max(1e-30),
                    "p={p} id={} err={err}",
                    g.id
                );
            }
        }
    }

    #[test]
    fn symmetric_ring_halves_shift_messages() {
        let domain = Domain::unit();
        let law = Gravity::default();
        let p = 8;
        let stats = run_ranks(p, |world| {
            let all = init::uniform(24, &domain, 5);
            let mut my = id_block_subset(&all, p, world.rank());
            particle_ring_symmetric_forces(world, &mut my, &law, &domain, Boundary::Open);
            world.stats()
        });
        for s in &stats {
            // p/2 = 4 shifts vs the full ring's p-1 = 7, plus 1 return.
            assert_eq!(s.phase(Phase::Shift).messages, (p / 2) as u64);
            assert_eq!(s.phase(Phase::Reduce).messages, 1);
        }
    }

    #[test]
    #[should_panic(expected = "symmetric force law")]
    fn symmetric_ring_rejects_asymmetric_law() {
        let domain = Domain::unit();
        run_ranks(2, |world| {
            let all = init::uniform(4, &domain, 1);
            let mut my = id_block_subset(&all, 2, world.rank());
            particle_ring_symmetric_forces(
                world,
                &mut my,
                &Counting,
                &domain,
                Boundary::Open,
            );
        });
    }

    #[test]
    fn single_rank_symmetric_ring() {
        let got = run_symmetric(1, 9, 3);
        let domain = Domain::unit();
        let mut want = init::uniform(9, &domain, 3);
        reference::accumulate_forces(
            &mut want,
            &RepulsiveInverseSquare::default(),
            &domain,
            Boundary::Open,
        );
        for (g, w) in got.iter().zip(&want) {
            assert!((g.force - w.force).norm() < 1e-14);
        }
    }
}
