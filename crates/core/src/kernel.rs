//! The block-on-block force kernel shared by every distributed algorithm.

use nbody_physics::{Boundary, Domain, ForceLaw, Particle};

/// Accumulate the forces exerted by every particle in `sources` on every
/// particle in `targets`. Self-interactions (matching ids) are skipped, so
/// it is safe to pass a block to itself.
///
/// The cost of this kernel — `|targets| * |sources|` force evaluations — is
/// the unit of "computation" in the paper's cost model (`F = n²` total for
/// all-pairs, `F = nk` with a cutoff).
pub fn accumulate_block<F: ForceLaw>(
    targets: &mut [Particle],
    sources: &[Particle],
    law: &F,
    domain: &Domain,
    boundary: Boundary,
) {
    for t in targets.iter_mut() {
        let mut acc = t.force;
        for s in sources {
            if t.id == s.id {
                continue;
            }
            let disp = boundary.displacement(domain, t.pos, s.pos);
            acc += law.force(t, s, disp);
        }
        t.force = acc;
    }
}

/// Number of force evaluations `accumulate_block` performs for the given
/// block sizes (used by schedule generators to cost compute ops): all
/// ordered cross pairs, minus the skipped self-pairs when the blocks are
/// the same block.
pub fn block_interactions(targets: usize, sources: usize, same_block: bool) -> u64 {
    let total = targets as u64 * sources as u64;
    if same_block {
        total - targets as u64
    } else {
        total
    }
}

/// Sum the force accumulators of `src` into `dst` element-wise: the combine
/// function of the team reduction (Algorithm 1, line 9). Positions,
/// velocities, ids are untouched — copies of the same subset agree on them.
pub fn combine_forces(dst: &mut Particle, src: &Particle) {
    debug_assert_eq!(dst.id, src.id, "reducing mismatched particles");
    dst.force += src.force;
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_physics::{init, reference, Counting, Vec2};

    #[test]
    fn kernel_matches_reference_for_full_population() {
        let domain = Domain::unit();
        let mut a = init::uniform(30, &domain, 1);
        let mut b = a.clone();

        // Kernel applied block-to-itself == reference all-pairs.
        let sources = a.clone();
        accumulate_block(&mut a, &sources, &Counting, &domain, Boundary::Open);
        reference::accumulate_forces(&mut b, &Counting, &domain, Boundary::Open);
        assert_eq!(a, b);
    }

    #[test]
    fn self_pairs_skipped_by_id_not_index() {
        let domain = Domain::unit();
        let mut targets = vec![nbody_physics::Particle::at(7, Vec2::new(0.5, 0.5))];
        let sources = vec![
            nbody_physics::Particle::at(7, Vec2::new(0.5, 0.5)), // same id: skip
            nbody_physics::Particle::at(8, Vec2::new(0.6, 0.5)),
        ];
        accumulate_block(&mut targets, &sources, &Counting, &domain, Boundary::Open);
        assert_eq!(targets[0].force.x, 1.0);
    }

    #[test]
    fn interaction_counts() {
        assert_eq!(block_interactions(4, 5, false), 20);
        assert_eq!(block_interactions(4, 4, true), 12);
        assert_eq!(block_interactions(0, 9, false), 0);
        assert_eq!(block_interactions(1, 1, true), 0);
    }

    #[test]
    fn combine_forces_sums_only_forces() {
        let mut a = nbody_physics::Particle::at(3, Vec2::new(0.1, 0.2));
        a.force = Vec2::new(1.0, 2.0);
        let mut b = a;
        b.force = Vec2::new(0.5, -1.0);
        combine_forces(&mut a, &b);
        assert_eq!(a.force, Vec2::new(1.5, 1.0));
        assert_eq!(a.pos, Vec2::new(0.1, 0.2));
    }
}
