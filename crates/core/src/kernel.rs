//! The block-on-block force kernel shared by every distributed algorithm,
//! and its compute accounting.
//!
//! Besides the kernel itself, this module defines the FLOP/byte bookkeeping
//! the roofline audit consumes: [`ComputeStats`] is the plain-data record of
//! one (or many summed) kernel invocations, and [`ComputeMeter`] times kernel
//! calls and publishes their totals through the `nbody-metrics` registry as
//! the `compute_*` counters.

use std::time::Instant;

use nbody_metrics::{Counter, MetricsRecorder};
use nbody_physics::{Boundary, Domain, ForceLaw, Particle};

/// Accumulate the forces exerted by every particle in `sources` on every
/// particle in `targets`. Self-interactions (matching ids) are skipped, so
/// it is safe to pass a block to itself.
///
/// Returns the exact number of force evaluations performed — all ordered
/// cross pairs minus the skipped same-id pairs. This count is the unit of
/// "computation" in the paper's cost model (`F = n²` total for all-pairs,
/// `F = nk` with a cutoff) and the basis of the FLOP accounting.
pub fn accumulate_block<F: ForceLaw>(
    targets: &mut [Particle],
    sources: &[Particle],
    law: &F,
    domain: &Domain,
    boundary: Boundary,
) -> u64 {
    let mut skipped: u64 = 0;
    for t in targets.iter_mut() {
        let mut acc = t.force;
        for s in sources {
            if t.id == s.id {
                skipped += 1;
                continue;
            }
            let disp = boundary.displacement(domain, t.pos, s.pos);
            acc += law.force(t, s, disp);
        }
        t.force = acc;
    }
    (targets.len() as u64)
        .saturating_mul(sources.len() as u64)
        .saturating_sub(skipped)
}

/// [`accumulate_block`], additionally harvesting the summed pair potential
/// of every evaluated interaction — the health monitors' potential-energy
/// partial. Because the CA schedules evaluate every *ordered* pair exactly
/// once globally, the world-reduced sum of these partials counts each
/// unordered pair twice; the driver halves it.
///
/// Kept separate from [`accumulate_block`] so plain (health-off) runs pay
/// nothing: the potential evaluation is not free for laws like
/// Lennard-Jones, and a dead second accumulator still costs a register.
pub fn accumulate_block_potential<F: ForceLaw>(
    targets: &mut [Particle],
    sources: &[Particle],
    law: &F,
    domain: &Domain,
    boundary: Boundary,
) -> (u64, f64) {
    let mut skipped: u64 = 0;
    let mut potential = 0.0f64;
    for t in targets.iter_mut() {
        let mut acc = t.force;
        for s in sources {
            if t.id == s.id {
                skipped += 1;
                continue;
            }
            let disp = boundary.displacement(domain, t.pos, s.pos);
            acc += law.force(t, s, disp);
            potential += law.potential(t, s, disp);
        }
        t.force = acc;
    }
    let evals = (targets.len() as u64)
        .saturating_mul(sources.len() as u64)
        .saturating_sub(skipped);
    (evals, potential)
}

/// Number of force evaluations `accumulate_block` performs for the given
/// block sizes (used by schedule generators to cost compute ops): all
/// ordered cross pairs, minus the skipped self-pairs when the blocks are
/// the same block.
///
/// Saturating: at `u64`-boundary block sizes the product clamps to
/// `u64::MAX` instead of wrapping, so FLOP totals derived from this count
/// degrade to a floor rather than silently becoming tiny.
pub fn block_interactions(targets: usize, sources: usize, same_block: bool) -> u64 {
    let total = (targets as u64).saturating_mul(sources as u64);
    if same_block {
        total.saturating_sub(targets as u64)
    } else {
        total
    }
}

/// Sum the force accumulators of `src` into `dst` element-wise: the combine
/// function of the team reduction (Algorithm 1, line 9). Positions,
/// velocities, ids are untouched — copies of the same subset agree on them.
pub fn combine_forces(dst: &mut Particle, src: &Particle) {
    debug_assert_eq!(dst.id, src.id, "reducing mismatched particles");
    dst.force += src.force;
}

/// Compute accounting for one or more kernel invocations: the raw numbers
/// the roofline model needs (FLOPs over time for achieved GFLOP/s, FLOPs
/// over bytes for arithmetic intensity).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ComputeStats {
    /// Force evaluations performed.
    pub interactions: u64,
    /// Floating-point operations, `interactions` times the law's
    /// per-evaluation constant.
    pub flops: u64,
    /// Compulsory memory traffic: targets are read and written, sources
    /// read, at the in-memory particle size.
    pub bytes: u64,
    /// Wall-clock nanoseconds spent inside the kernel.
    pub nanos: u64,
}

impl ComputeStats {
    /// The stats of one kernel call over `targets` x `sources` particles
    /// that performed `evals` force evaluations in `nanos` ns.
    pub fn for_block(
        evals: u64,
        flops_per_interaction: u64,
        targets: usize,
        sources: usize,
        nanos: u64,
    ) -> ComputeStats {
        let particle = std::mem::size_of::<Particle>() as u64;
        ComputeStats {
            interactions: evals,
            flops: evals.saturating_mul(flops_per_interaction),
            bytes: (2 * targets as u64 + sources as u64).saturating_mul(particle),
            nanos,
        }
    }

    /// Fold another record into this one.
    pub fn merge(&mut self, other: &ComputeStats) {
        self.interactions = self.interactions.saturating_add(other.interactions);
        self.flops = self.flops.saturating_add(other.flops);
        self.bytes = self.bytes.saturating_add(other.bytes);
        self.nanos = self.nanos.saturating_add(other.nanos);
    }

    /// Achieved GFLOP/s (FLOPs per nanosecond), 0 when nothing was timed.
    pub fn gflops(&self) -> f64 {
        if self.nanos == 0 {
            0.0
        } else {
            self.flops as f64 / self.nanos as f64
        }
    }

    /// Arithmetic intensity in FLOPs per byte, 0 when nothing moved.
    pub fn intensity(&self) -> f64 {
        if self.bytes == 0 {
            0.0
        } else {
            self.flops as f64 / self.bytes as f64
        }
    }
}

/// Times kernel calls and records their [`ComputeStats`] into the metrics
/// registry as the `compute_interactions` / `compute_flops` /
/// `compute_bytes` / `compute_nanos` counters (no phase label: the kernel
/// always runs under the drivers' `Phase::Other`). Cheap to construct per
/// force evaluation; a no-op when the recorder is disabled.
pub struct ComputeMeter {
    flops_per_interaction: u64,
    interactions: Counter,
    flops: Counter,
    bytes: Counter,
    nanos: Counter,
}

impl ComputeMeter {
    /// A meter recording into `rec` for a law with the given
    /// per-evaluation FLOP constant.
    pub fn new(rec: &MetricsRecorder, flops_per_interaction: u64) -> ComputeMeter {
        ComputeMeter {
            flops_per_interaction,
            interactions: rec.counter("compute_interactions", None),
            flops: rec.counter("compute_flops", None),
            bytes: rec.counter("compute_bytes", None),
            nanos: rec.counter("compute_nanos", None),
        }
    }

    /// Time `run` (a kernel call returning its evaluation count) over a
    /// `targets` x `sources` block pair and record the resulting stats.
    pub fn time(
        &self,
        targets: usize,
        sources: usize,
        run: impl FnOnce() -> u64,
    ) -> ComputeStats {
        let start = Instant::now();
        let evals = run();
        let nanos = start.elapsed().as_nanos() as u64;
        self.record(evals, targets, sources, nanos)
    }

    /// Record an already-timed kernel call.
    pub fn record(
        &self,
        evals: u64,
        targets: usize,
        sources: usize,
        nanos: u64,
    ) -> ComputeStats {
        let stats =
            ComputeStats::for_block(evals, self.flops_per_interaction, targets, sources, nanos);
        self.interactions.add(stats.interactions);
        self.flops.add(stats.flops);
        self.bytes.add(stats.bytes);
        self.nanos.add(stats.nanos);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_physics::{init, reference, Counting, Vec2};

    #[test]
    fn kernel_matches_reference_for_full_population() {
        let domain = Domain::unit();
        let mut a = init::uniform(30, &domain, 1);
        let mut b = a.clone();

        // Kernel applied block-to-itself == reference all-pairs.
        let sources = a.clone();
        let evals = accumulate_block(&mut a, &sources, &Counting, &domain, Boundary::Open);
        reference::accumulate_forces(&mut b, &Counting, &domain, Boundary::Open);
        assert_eq!(a, b);
        assert_eq!(evals, block_interactions(30, 30, true));
    }

    #[test]
    fn potential_variant_matches_plain_kernel_and_pair_sum() {
        use nbody_physics::Gravity;
        let domain = Domain::unit();
        let law = Gravity { g: 1e-3, softening: 0.05 };
        let mut a = init::uniform(24, &domain, 5);
        let mut b = a.clone();
        let sources = a.clone();

        let evals_plain = accumulate_block(&mut a, &sources, &law, &domain, Boundary::Open);
        let (evals, pe) =
            accumulate_block_potential(&mut b, &sources, &law, &domain, Boundary::Open);
        assert_eq!(a, b, "forces must be bit-identical to the plain kernel");
        assert_eq!(evals, evals_plain);

        // Block-on-itself evaluates each unordered pair twice, so the
        // harvested sum is exactly twice the once-per-pair diagnostic.
        let reference = nbody_physics::diagnostics::total_potential_energy(
            &sources,
            &law,
            &domain,
            Boundary::Open,
        );
        assert!(
            (pe - 2.0 * reference).abs() <= 1e-12 * reference.abs().max(1.0),
            "harvested {pe} vs 2x reference {reference}"
        );
    }

    #[test]
    fn self_pairs_skipped_by_id_not_index() {
        let domain = Domain::unit();
        let mut targets = vec![nbody_physics::Particle::at(7, Vec2::new(0.5, 0.5))];
        let sources = vec![
            nbody_physics::Particle::at(7, Vec2::new(0.5, 0.5)), // same id: skip
            nbody_physics::Particle::at(8, Vec2::new(0.6, 0.5)),
        ];
        let evals = accumulate_block(&mut targets, &sources, &Counting, &domain, Boundary::Open);
        assert_eq!(targets[0].force.x, 1.0);
        assert_eq!(evals, 1, "the same-id pair is not counted");
    }

    #[test]
    fn interaction_counts() {
        assert_eq!(block_interactions(4, 5, false), 20);
        assert_eq!(block_interactions(4, 4, true), 12);
        assert_eq!(block_interactions(0, 9, false), 0);
        assert_eq!(block_interactions(1, 1, true), 0);
    }

    #[test]
    fn interaction_counts_saturate_at_u64_boundaries() {
        // 2^33 * 2^33 = 2^66 overflows u64: clamp to the ceiling instead
        // of wrapping to a tiny value.
        let huge = 1usize << 33;
        assert_eq!(block_interactions(huge, huge, false), u64::MAX);
        // The self-pair subtraction still applies to the clamped product.
        assert_eq!(
            block_interactions(huge, huge, true),
            u64::MAX - huge as u64
        );
        // Exactly at the boundary: 2^32 * 2^32 = 2^64 saturates ...
        let edge = 1usize << 32;
        assert_eq!(block_interactions(edge, edge, false), u64::MAX);
        // ... while one source fewer fits exactly.
        assert_eq!(
            block_interactions(edge, edge - 1, false),
            (edge as u64) * (edge as u64 - 1)
        );
        // A degenerate same-block call with zero sources must not
        // underflow past zero.
        assert_eq!(block_interactions(5, 0, true), 0);
    }

    #[test]
    fn combine_forces_sums_only_forces() {
        let mut a = nbody_physics::Particle::at(3, Vec2::new(0.1, 0.2));
        a.force = Vec2::new(1.0, 2.0);
        let mut b = a;
        b.force = Vec2::new(0.5, -1.0);
        combine_forces(&mut a, &b);
        assert_eq!(a.force, Vec2::new(1.5, 1.0));
        assert_eq!(a.pos, Vec2::new(0.1, 0.2));
    }

    #[test]
    fn compute_stats_arithmetic() {
        let s = ComputeStats::for_block(100, 20, 10, 10, 2_000);
        assert_eq!(s.interactions, 100);
        assert_eq!(s.flops, 2_000);
        let particle = std::mem::size_of::<Particle>() as u64;
        assert_eq!(s.bytes, 30 * particle);
        assert_eq!(s.gflops(), 1.0, "2000 FLOPs in 2000 ns is 1 GFLOP/s");
        assert!((s.intensity() - 2_000.0 / (30.0 * particle as f64)).abs() < 1e-12);

        let mut total = s;
        total.merge(&s);
        assert_eq!(total.interactions, 200);
        assert_eq!(total.flops, 4_000);

        // Saturating end to end: a clamped interaction count cannot wrap
        // when multiplied by the FLOP constant.
        let sat = ComputeStats::for_block(u64::MAX, 20, 1, 1, 1);
        assert_eq!(sat.flops, u64::MAX);
        assert_eq!(ComputeStats::default().gflops(), 0.0);
        assert_eq!(ComputeStats::default().intensity(), 0.0);
    }

    #[test]
    fn compute_meter_records_counters() {
        let rec = MetricsRecorder::for_rank(2);
        let meter = ComputeMeter::new(&rec, 20);
        let domain = Domain::unit();
        let mut block = init::uniform(16, &domain, 3);
        let sources = block.clone();
        let stats = meter.time(block.len(), sources.len(), || {
            accumulate_block(&mut block, &sources, &Counting, &domain, Boundary::Open)
        });
        assert_eq!(stats.interactions, 16 * 15);
        let m = rec.finish().unwrap();
        assert_eq!(m.counter("compute_interactions", None), 16 * 15);
        assert_eq!(m.counter("compute_flops", None), 16 * 15 * 20);
        assert!(m.counter("compute_nanos", None) > 0);
        assert!(m.counter("compute_bytes", None) > 0);
    }

    #[test]
    fn compute_meter_disabled_is_noop() {
        let rec = MetricsRecorder::disabled();
        let meter = ComputeMeter::new(&rec, 20);
        let stats = meter.record(10, 2, 5, 100);
        // The stats are still returned for the caller ...
        assert_eq!(stats.interactions, 10);
        // ... but nothing is recorded.
        assert!(rec.finish().is_none());
    }
}
