//! Spatial re-assignment between timesteps.
//!
//! The cutoff algorithms require a spatial decomposition, so after particles
//! move they must be handed to their new owner teams — the cost the paper
//! plots as "Communication (Re-assign)" in Fig. 6. Leaders exchange
//! migrants directly with every destination team; in near-uniform flows all
//! but the neighbor buckets are empty, so the realized traffic is
//! neighbor-to-neighbor.

use nbody_comm::{CommData, Communicator, Phase};
use nbody_physics::Particle;

/// Tag for re-assignment messages.
pub const TAG_REASSIGN: u64 = 0x40;

/// Exchange migrated particles among the team leaders.
///
/// `leaders` must be a communicator containing exactly the team leaders,
/// ranked by team (the row-0 row communicator). `assign` maps a particle to
/// its owning team. On return, `st` holds exactly the particles assigned to
/// this team, sorted by id for determinism.
pub fn reassign_particles<C: Communicator>(
    leaders: &C,
    st: &mut Vec<Particle>,
    assign: impl Fn(&Particle) -> usize,
) {
    leaders.set_phase(Phase::Reassign);
    let teams = leaders.size();

    let mut buckets: Vec<Vec<Particle>> = vec![Vec::new(); teams];
    for p in st.drain(..) {
        let dst = assign(&p);
        debug_assert!(dst < teams, "assignment out of range");
        buckets[dst].push(p);
    }
    // An alltoallv: empty buckets still cost one (empty) message; the
    // realized payload is neighbor-local for physical flows.
    let mut keep: Vec<Particle> = leaders.alltoallv(buckets).into_iter().flatten().collect();
    keep.sort_by_key(|p| p.id);
    *st = keep;
}

/// Exchange arbitrary items among ranks by destination (a generic
/// all-to-all); used by tests and by custom decompositions.
pub fn exchange_by_destination<C: Communicator, T: CommData>(
    comm: &C,
    items: Vec<(usize, T)>,
) -> Vec<T> {
    let p = comm.size();
    let me = comm.rank();
    let mut buckets: Vec<Vec<T>> = vec![Vec::new(); p];
    for (dst, item) in items {
        assert!(dst < p, "destination {dst} out of range");
        buckets[dst].push(item);
    }
    let mut out = std::mem::take(&mut buckets[me]);
    for offset in 1..p {
        let dst = (me + offset) % p;
        comm.send(dst, TAG_REASSIGN + offset as u64, &buckets[dst]);
    }
    for offset in 1..p {
        let src = (me + p - offset) % p;
        out.extend(comm.recv::<T>(src, TAG_REASSIGN + offset as u64));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::team_of_x;
    use nbody_comm::run_ranks;
    use nbody_physics::{init, Domain};

    #[test]
    fn reassign_moves_particles_home() {
        let domain = Domain::unit();
        let teams = 4;
        let n = 40;
        let out = run_ranks(teams, |world| {
            // Deliberately mis-assign: rank r starts with the id block, not
            // the spatial block.
            let all = init::uniform(n, &domain, 17);
            let mut st = crate::dist::id_block_subset(&all, teams, world.rank());
            reassign_particles(world, &mut st, |p| team_of_x(&domain, teams, p.pos.x));
            st
        });
        let mut total = 0;
        for (team, st) in out.iter().enumerate() {
            total += st.len();
            for p in st {
                assert_eq!(team_of_x(&domain, teams, p.pos.x), team);
            }
            // Sorted by id.
            assert!(st.windows(2).all(|w| w[0].id < w[1].id));
        }
        assert_eq!(total, n, "no particles lost or duplicated");
    }

    #[test]
    fn reassign_is_idempotent_when_already_assigned() {
        let domain = Domain::unit();
        let teams = 3;
        let out = run_ranks(teams, |world| {
            let all = init::uniform(30, &domain, 2);
            let mut st =
                crate::dist::spatial_subset_1d(&all, &domain, teams, world.rank());
            let before = st.clone();
            reassign_particles(world, &mut st, |p| team_of_x(&domain, teams, p.pos.x));
            (before, st)
        });
        for (before, after) in out {
            let mut sorted = before.clone();
            sorted.sort_by_key(|p| p.id);
            assert_eq!(sorted, after);
        }
    }

    #[test]
    fn reassign_attributes_phase() {
        let domain = Domain::unit();
        let teams = 4;
        let stats = run_ranks(teams, |world| {
            let all = init::uniform(16, &domain, 3);
            let mut st = crate::dist::id_block_subset(&all, teams, world.rank());
            reassign_particles(world, &mut st, |p| team_of_x(&domain, teams, p.pos.x));
            world.stats()
        });
        for s in &stats {
            assert_eq!(s.phase(Phase::Reassign).messages, (teams - 1) as u64);
        }
    }

    #[test]
    fn exchange_by_destination_routes_items() {
        let p = 5;
        let out = run_ranks(p, |comm| {
            // Every rank sends its rank*10+dst to each dst.
            let items: Vec<(usize, u64)> = (0..p)
                .map(|dst| (dst, (comm.rank() * 10 + dst) as u64))
                .collect();
            let mut got = exchange_by_destination(comm, items);
            got.sort_unstable();
            got
        });
        for (r, got) in out.iter().enumerate() {
            let want: Vec<u64> = (0..p).map(|src| (src * 10 + r) as u64).collect();
            assert_eq!(got, &want);
        }
    }

    #[test]
    fn single_rank_exchange_is_local() {
        let out = run_ranks(1, |comm| {
            exchange_by_destination(comm, vec![(0, 1u8), (0, 2)])
        });
        assert_eq!(out[0], vec![1, 2]);
    }
}
