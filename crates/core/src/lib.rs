//! # ca-nbody
//!
//! Core algorithms of the reproduction of *“A Communication-Optimal N-Body
//! Algorithm for Direct Interactions”* (Driscoll, Georganas, Koanantakool,
//! Solomonik, Yelick — IPDPS 2013).
//!
//! * [`allpairs`] — Algorithm 1, the CA all-pairs force evaluation on a
//!   `p/c × c` processor grid.
//! * [`cutoff`] — Algorithm 2 (1D) and its Fig. 5 generalization (2D),
//!   traversing interaction [`window`]s modulo the cutoff.
//! * [`baselines`] — Plimpton's particle and force decompositions and the
//!   allgather ("tree") naive variant.
//! * [`spatial`] — the non-replicating halo-exchange baseline (§II.C).
//! * [`reassign`] — spatial re-assignment between timesteps (§IV.D).
//! * [`grid`], [`dist`], [`kernel`] — the processor grid, particle
//!   distributions, and the shared block force kernel.

#![warn(missing_docs)]

pub mod allpairs;
pub mod autotune;
pub mod baselines;
pub mod cutoff;
pub mod dist;
pub mod grid;
pub mod kernel;
pub mod midpoint;
pub mod probe;
pub mod reassign;
pub mod recovery;
pub mod schedule;
pub mod sim;
pub mod spatial;
pub mod window;
pub mod window_periodic;
pub mod wire;

pub use cutoff::{ca_cutoff_forces, CutoffError};
pub use allpairs::ca_all_pairs_forces;
pub use grid::{GridComms, GridError, ProcGrid};
pub use recovery::{
    ca_all_pairs_forces_ft, ca_all_pairs_forces_ft_health, ca_cutoff_forces_ft,
    ca_cutoff_forces_ft_health, FaultClass, FaultError, HealthMonitor, RecoveryReport,
    RetryPolicy,
};
pub use probe::StepProbe;
pub use sim::{
    run_distributed, run_distributed_chaos, run_distributed_chaos_recorded,
    run_distributed_chaos_wired, run_distributed_durable, run_distributed_health,
    run_distributed_recorded, run_distributed_sampled, run_distributed_traced,
    run_distributed_wired, run_serial, ChaosRunResult, CheckpointConfig, Method, RunResult,
    SimConfig,
};
pub use window::{Window, Window1d, Window2d, Window3d};
pub use window_periodic::{Window1dPeriodic, Window2dPeriodic};
pub use wire::{expected_schedule, WireScheduleSpec};
