//! Particle-to-team distribution helpers.
//!
//! The all-pairs algorithm divides particles "evenly among team leaders"
//! (Algorithm 1) — an id-based block distribution. The cutoff algorithms
//! divide them *spatially* (Algorithm 2): each team owns the particles in a
//! slab (1D) or rectangle (2D) of the simulation domain.

use nbody_physics::{Domain, Particle};

/// Index range of team `b`'s block in an id-ordered distribution of `n`
/// particles over `teams` blocks: balanced contiguous blocks whose sizes
/// differ by at most one.
pub fn block_range(n: usize, teams: usize, b: usize) -> std::ops::Range<usize> {
    assert!(b < teams, "block {b} out of {teams}");
    let base = n / teams;
    let extra = n % teams;
    let start = b * base + b.min(extra);
    let len = base + usize::from(b < extra);
    start..start + len
}

/// The team owning particle id `id` under the id-block distribution.
pub fn team_of_id(n: usize, teams: usize, id: u64) -> usize {
    debug_assert!((id as usize) < n);
    // Invert block_range: the first `extra` blocks have base+1 elements.
    let base = n / teams;
    let extra = n % teams;
    let id = id as usize;
    let boundary = extra * (base + 1);
    if id < boundary {
        id / (base + 1)
    } else {
        extra + (id - boundary) / base.max(1)
    }
}

/// The team owning position `x` under a 1D spatial decomposition of the
/// domain's x-axis into `teams` equal slabs. Positions outside the domain
/// clamp to the nearest slab.
pub fn team_of_x(domain: &Domain, teams: usize, x: f64) -> usize {
    let t = ((x - domain.min.x) / domain.length_x() * teams as f64).floor() as isize;
    t.clamp(0, teams as isize - 1) as usize
}

/// The 2D team grid: `tx * ty == teams`, chosen as close to square as the
/// factorization of `teams` allows (`tx >= ty`, maximizing `ty`).
pub fn team_grid_dims(teams: usize) -> (usize, usize) {
    assert!(teams > 0);
    let mut ty = (teams as f64).sqrt() as usize;
    while ty > 1 && !teams.is_multiple_of(ty) {
        ty -= 1;
    }
    (teams / ty.max(1), ty.max(1))
}

/// The team owning position `(x, y)` under a 2D spatial decomposition into a
/// `tx x ty` grid of rectangles, linearized row-major (`t = cy * tx + cx`).
pub fn team_of_xy(domain: &Domain, tx: usize, ty: usize, x: f64, y: f64) -> usize {
    let cx = (((x - domain.min.x) / domain.length_x() * tx as f64).floor() as isize)
        .clamp(0, tx as isize - 1) as usize;
    let cy = (((y - domain.min.y) / domain.length_y() * ty as f64).floor() as isize)
        .clamp(0, ty as isize - 1) as usize;
    cy * tx + cx
}

/// Select (by clone) the particles of team `b` under the id-block
/// distribution. Assumes `particles` is the full id-ordered population —
/// the deterministic-generation convention used by the drivers.
pub fn id_block_subset(particles: &[Particle], teams: usize, b: usize) -> Vec<Particle> {
    particles[block_range(particles.len(), teams, b)].to_vec()
}

/// Select the particles of team `b` under the 1D spatial decomposition.
pub fn spatial_subset_1d(
    particles: &[Particle],
    domain: &Domain,
    teams: usize,
    b: usize,
) -> Vec<Particle> {
    particles
        .iter()
        .filter(|p| team_of_x(domain, teams, p.pos.x) == b)
        .copied()
        .collect()
}

/// Select the particles of team `b` under the 2D spatial decomposition.
pub fn spatial_subset_2d(
    particles: &[Particle],
    domain: &Domain,
    tx: usize,
    ty: usize,
    b: usize,
) -> Vec<Particle> {
    particles
        .iter()
        .filter(|p| team_of_xy(domain, tx, ty, p.pos.x, p.pos.y) == b)
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_physics::{init, Vec2};

    #[test]
    fn block_ranges_partition() {
        for (n, teams) in [(10, 3), (12, 4), (7, 7), (5, 8), (100, 1)] {
            let mut covered = 0;
            let mut sizes = Vec::new();
            for b in 0..teams {
                let r = block_range(n, teams, b);
                assert_eq!(r.start, covered, "contiguous");
                covered = r.end;
                sizes.push(r.len());
            }
            assert_eq!(covered, n, "n={n} teams={teams}");
            let (lo, hi) = (
                sizes.iter().min().unwrap(),
                sizes.iter().max().unwrap(),
            );
            assert!(hi - lo <= 1, "balanced: {sizes:?}");
        }
    }

    #[test]
    fn team_of_id_inverts_block_range() {
        for (n, teams) in [(10, 3), (12, 4), (7, 7), (64, 8), (9, 2)] {
            for b in 0..teams {
                for id in block_range(n, teams, b) {
                    assert_eq!(
                        team_of_id(n, teams, id as u64),
                        b,
                        "n={n} teams={teams} id={id}"
                    );
                }
            }
        }
    }

    #[test]
    fn team_of_x_covers_slabs() {
        let d = Domain::square(8.0);
        assert_eq!(team_of_x(&d, 4, 0.0), 0);
        assert_eq!(team_of_x(&d, 4, 1.99), 0);
        assert_eq!(team_of_x(&d, 4, 2.0), 1);
        assert_eq!(team_of_x(&d, 4, 7.99), 3);
        // Clamping outside the domain.
        assert_eq!(team_of_x(&d, 4, -1.0), 0);
        assert_eq!(team_of_x(&d, 4, 9.0), 3);
    }

    #[test]
    fn team_grid_dims_factor() {
        assert_eq!(team_grid_dims(16), (4, 4));
        assert_eq!(team_grid_dims(8), (4, 2));
        assert_eq!(team_grid_dims(12), (4, 3));
        assert_eq!(team_grid_dims(7), (7, 1));
        assert_eq!(team_grid_dims(1), (1, 1));
        for t in 1..=64 {
            let (tx, ty) = team_grid_dims(t);
            assert_eq!(tx * ty, t);
            assert!(tx >= ty);
        }
    }

    #[test]
    fn team_of_xy_row_major() {
        let d = Domain::square(4.0);
        // 2x2 grid on [0,4)^2: quadrant checks.
        assert_eq!(team_of_xy(&d, 2, 2, 1.0, 1.0), 0);
        assert_eq!(team_of_xy(&d, 2, 2, 3.0, 1.0), 1);
        assert_eq!(team_of_xy(&d, 2, 2, 1.0, 3.0), 2);
        assert_eq!(team_of_xy(&d, 2, 2, 3.0, 3.0), 3);
    }

    #[test]
    fn spatial_subsets_partition_particles() {
        let d = Domain::square(1.0);
        let ps = init::uniform(200, &d, 1);
        let teams = 5;
        let total: usize = (0..teams)
            .map(|b| spatial_subset_1d(&ps, &d, teams, b).len())
            .sum();
        assert_eq!(total, 200);

        let (tx, ty) = team_grid_dims(6);
        let total2: usize = (0..6)
            .map(|b| spatial_subset_2d(&ps, &d, tx, ty, b).len())
            .sum();
        assert_eq!(total2, 200);
    }

    #[test]
    fn id_block_subset_matches_range() {
        let d = Domain::square(1.0);
        let ps = init::uniform(10, &d, 2);
        let sub = id_block_subset(&ps, 3, 1);
        assert_eq!(sub.len(), 3); // 10 = 4+3+3
        assert_eq!(sub[0].id, 4);
    }

    #[test]
    fn boundary_positions_stay_in_range() {
        let d = Domain::new(Vec2::new(-1.0, -1.0), Vec2::new(1.0, 1.0));
        // Exactly on the max edge clamps into the last team.
        assert_eq!(team_of_x(&d, 8, 1.0), 7);
        assert_eq!(team_of_xy(&d, 4, 4, 1.0, 1.0), 15);
    }
}
