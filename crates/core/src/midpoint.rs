//! The midpoint method (Bowers, Dror, Shaw 2006) — the paper's §II.D
//! representative of *neutral territory* methods: the processor that owns
//! the **midpoint** of an interacting pair computes it, even when it owns
//! neither particle.
//!
//! Compared with the plain spatial decomposition, each processor imports
//! only particles within `r_c / 2` of its region (half the import span),
//! at the cost of a second communication round returning force
//! contributions to the particles' owners. The method inherently evaluates
//! both directions of a pair where it is computed, so it also serves as an
//! in-repo contrast to the paper's no-symmetry policy.
//!
//! Works in 1D and 2D via the same [`Window`] halo abstraction as the
//! spatial baseline; the window's span must cover `r_c / 2` (checked).

use std::collections::HashMap;

use nbody_comm::{Communicator, Phase};
use nbody_physics::{Boundary, Domain, ForceLaw, Particle, Vec2};

use crate::kernel::block_interactions;
use crate::window::Window;

/// Tag base for halo imports.
const TAG_IMPORT: u64 = 0x4000;
/// Tag base for force returns.
const TAG_RETURN: u64 = 0x5000;

/// Midpoint-method force evaluation: one team per rank (`c = 1`), spatial
/// regions assigned by `owner_of` (position → rank), halo neighbors
/// enumerated by `window` (which must span at least `r_c / 2`).
///
/// `my` holds this rank's particles with cleared accumulators; on return
/// it carries the total force from every pair within the cutoff.
pub fn midpoint_forces<C: Communicator, W: Window, F: ForceLaw>(
    world: &C,
    window: &W,
    my: &mut [Particle],
    law: &F,
    domain: &Domain,
    boundary: Boundary,
    owner_of: impl Fn(Vec2) -> usize,
) {
    assert_eq!(
        boundary == Boundary::Periodic,
        window.is_periodic(),
        "boundary and window periodicity must agree"
    );
    assert_eq!(window.teams(), world.size(), "one region per rank");
    let me = world.rank();
    let r_c = law
        .cutoff()
        .expect("the midpoint method requires a cutoff force law");

    // Round 1: import the halo (blocks within the window).
    world.set_phase(Phase::Shift);
    let own: Vec<Particle> = my.to_vec();
    for j in 1..window.len() {
        if let Some(dst) = window.apply(me, j) {
            world.send(dst, TAG_IMPORT + j as u64, &own);
        }
    }
    let mut pool: Vec<Particle> = own.clone();
    for j in 1..window.len() {
        if let Some(src) = window.apply_back(me, j) {
            pool.extend(world.recv::<Particle>(src, TAG_IMPORT + j as u64));
        }
    }

    // Compute every pair whose midpoint lies in my region. Both directions
    // are evaluated here (the pair is computed nowhere else).
    world.set_phase(Phase::Other);
    let r_c2 = r_c * r_c;
    let mut acc: HashMap<u64, Vec2> = HashMap::with_capacity(pool.len());
    for i in 0..pool.len() {
        for j in (i + 1)..pool.len() {
            let (a, b) = (pool[i], pool[j]);
            let disp = boundary.displacement(domain, a.pos, b.pos);
            if disp.norm_sq() > r_c2 {
                continue;
            }
            // Midpoint along the minimum-image segment, wrapped home.
            let mid_raw = a.pos + disp * 0.5;
            let (mid, _) = boundary.apply(domain, mid_raw, Vec2::zero());
            if owner_of(mid) != me {
                continue;
            }
            let f_on_a = law.force(&a, &b, disp);
            let f_on_b = law.force(&b, &a, -disp);
            *acc.entry(a.id).or_insert(Vec2::zero()) += f_on_a;
            *acc.entry(b.id).or_insert(Vec2::zero()) += f_on_b;
        }
    }

    // Round 2: return contributions to the owners.
    world.set_phase(Phase::Reduce);
    let mut returns: Vec<Vec<(u64, Vec2)>> = vec![Vec::new(); window.len()];
    for q in &pool[own.len()..] {
        // Imported particle: its contribution (if any) goes home.
        if let Some(f) = acc.get(&q.id) {
            let home = owner_of(q.pos);
            // Which window position reaches `home`? Find the j whose
            // apply_back equals it (the reverse of the import).
            let j = (1..window.len())
                .find(|&j| window.apply_back(me, j) == Some(home))
                .expect("imported particle's home must be a halo neighbor");
            returns[j].push((q.id, *f));
        }
    }
    for (j, bucket) in returns.iter().enumerate().skip(1) {
        if let Some(dst) = window.apply_back(me, j) {
            world.send(dst, TAG_RETURN + j as u64, bucket);
        }
    }
    // Fold local contributions, then remote ones.
    for q in my.iter_mut() {
        if let Some(f) = acc.get(&q.id) {
            q.force += *f;
        }
    }
    let mut by_id: HashMap<u64, usize> =
        my.iter().enumerate().map(|(i, q)| (q.id, i)).collect();
    for j in 1..window.len() {
        if let Some(src) = window.apply(me, j) {
            for (id, f) in world.recv::<(u64, Vec2)>(src, TAG_RETURN + j as u64) {
                let idx = *by_id
                    .get_mut(&id)
                    .expect("force returned for a particle we do not own");
                my[idx].force += f;
            }
        }
    }
}

/// Interaction work the midpoint method performs on one rank given its
/// pool size (for schedule/cost comparisons): all pool pairs are examined.
pub fn midpoint_pool_interactions(pool: usize) -> u64 {
    block_interactions(pool, pool, true) / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{spatial_subset_1d, spatial_subset_2d, team_grid_dims, team_of_x, team_of_xy};
    use crate::window::{Window1d, Window2d};
    use crate::window_periodic::Window1dPeriodic;
    use nbody_comm::run_ranks;
    use nbody_physics::{init, reference, Counting, Cutoff};

    /// Halo span for the midpoint method: r_c/2 coverage.
    fn half_window_1d(domain: &Domain, teams: usize, r_c: f64) -> Window1d {
        Window1d::from_cutoff(domain, teams, r_c / 2.0)
    }

    #[test]
    fn midpoint_1d_counting_matches_serial() {
        let domain = Domain::unit();
        let n = 60;
        let r_c = 0.2;
        let law = Cutoff::new(Counting, r_c);
        let mut want = init::uniform_1d(n, &domain, 15);
        reference::accumulate_forces(&mut want, &law, &domain, Boundary::Open);

        for p in [2usize, 4, 8] {
            let window = half_window_1d(&domain, p, r_c);
            let out = run_ranks(p, |world| {
                let all = init::uniform_1d(n, &domain, 15);
                let mut mine = spatial_subset_1d(&all, &domain, p, world.rank());
                midpoint_forces(
                    world,
                    &window,
                    &mut mine,
                    &law,
                    &domain,
                    Boundary::Open,
                    |pos| team_of_x(&domain, p, pos.x),
                );
                mine
            });
            let mut got: Vec<Particle> = out.into_iter().flatten().collect();
            got.sort_by_key(|q| q.id);
            assert_eq!(got.len(), n);
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.force.x, w.force.x, "p={p} id={}", g.id);
            }
        }
    }

    #[test]
    fn midpoint_2d_counting_matches_serial() {
        let domain = Domain::unit();
        let n = 80;
        let r_c = 0.25;
        let law = Cutoff::new(Counting, r_c);
        let mut want = init::uniform(n, &domain, 4);
        reference::accumulate_forces(&mut want, &law, &domain, Boundary::Open);

        let p = 8;
        let (tx, ty) = team_grid_dims(p);
        let window = Window2d::from_cutoff(&domain, tx, ty, r_c / 2.0);
        let out = run_ranks(p, |world| {
            let all = init::uniform(n, &domain, 4);
            let mut mine = spatial_subset_2d(&all, &domain, tx, ty, world.rank());
            midpoint_forces(
                world,
                &window,
                &mut mine,
                &law,
                &domain,
                Boundary::Open,
                |pos| team_of_xy(&domain, tx, ty, pos.x, pos.y),
            );
            mine
        });
        let mut got: Vec<Particle> = out.into_iter().flatten().collect();
        got.sort_by_key(|q| q.id);
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.force.x, w.force.x, "id={}", g.id);
        }
    }

    #[test]
    fn midpoint_periodic_matches_serial() {
        let domain = Domain::unit();
        let n = 50;
        let r_c = 0.2;
        let law = Cutoff::new(Counting, r_c);
        let mut want = init::uniform_1d(n, &domain, 8);
        reference::accumulate_forces(&mut want, &law, &domain, Boundary::Periodic);

        let p = 8;
        let window = Window1dPeriodic::from_cutoff(&domain, p, r_c / 2.0);
        let out = run_ranks(p, |world| {
            let all = init::uniform_1d(n, &domain, 8);
            let mut mine = spatial_subset_1d(&all, &domain, p, world.rank());
            midpoint_forces(
                world,
                &window,
                &mut mine,
                &law,
                &domain,
                Boundary::Periodic,
                |pos| team_of_x(&domain, p, pos.x),
            );
            mine
        });
        let mut got: Vec<Particle> = out.into_iter().flatten().collect();
        got.sort_by_key(|q| q.id);
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.force.x, w.force.x, "id={}", g.id);
        }
    }

    #[test]
    fn midpoint_physical_force_matches_serial() {
        use nbody_physics::RepulsiveInverseSquare;
        let domain = Domain::unit();
        let n = 40;
        let r_c = 0.3;
        let law = Cutoff::new(RepulsiveInverseSquare::default(), r_c);
        let mut want = init::uniform_1d(n, &domain, 2);
        reference::accumulate_forces(&mut want, &law, &domain, Boundary::Open);

        let p = 4;
        let window = half_window_1d(&domain, p, r_c);
        let out = run_ranks(p, |world| {
            let all = init::uniform_1d(n, &domain, 2);
            let mut mine = spatial_subset_1d(&all, &domain, p, world.rank());
            midpoint_forces(
                world,
                &window,
                &mut mine,
                &law,
                &domain,
                Boundary::Open,
                |pos| team_of_x(&domain, p, pos.x),
            );
            mine
        });
        let mut got: Vec<Particle> = out.into_iter().flatten().collect();
        got.sort_by_key(|q| q.id);
        for (g, w) in got.iter().zip(&want) {
            let err = (g.force - w.force).norm();
            assert!(err <= 1e-12 * w.force.norm().max(1e-30), "id={}", g.id);
        }
    }

    #[test]
    fn midpoint_import_region_is_half_of_spatial() {
        // §II.D: the midpoint method's import span covers r_c/2, the plain
        // spatial decomposition needs r_c.
        let domain = Domain::unit();
        let p = 32;
        let r_c = 0.25;
        let full = Window1d::from_cutoff(&domain, p, r_c);
        let half = half_window_1d(&domain, p, r_c);
        assert!(
            half.m() < full.m(),
            "midpoint halo {} vs spatial halo {}",
            half.m(),
            full.m()
        );
    }

    #[test]
    fn pool_interaction_count() {
        assert_eq!(midpoint_pool_interactions(4), 6);
        assert_eq!(midpoint_pool_interactions(0), 0);
        assert_eq!(midpoint_pool_interactions(1), 0);
    }
}
