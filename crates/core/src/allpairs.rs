//! Algorithm 1: the communication-avoiding all-pairs interaction algorithm.
//!
//! ```text
//! S' = CA-ALL-PAIRS-N-BODY(S, c)
//!   1 // In parallel on all processors:
//!   2 Broadcast St from team leader to team members.
//!   3 Copy St to exchange buffer St' of size nc/p.
//!   4 Given a k-th-row processor, shift St' by k along row.
//!   5 for p/c² steps do
//!   6   Shift St' by c along row.
//!   7   Update particles in St based on effect of St'.
//!   8 end for
//!   9 Sum-reduce updates within team.
//! ```
//!
//! After the skew (line 4), the row-`k` processor of team `t` holds the
//! exchange buffer of team `t − k (mod p/c)`; each shift by `c` moves
//! buffers one stride east, so over `p/c²` steps row `k` evaluates the
//! source blocks at offsets `{k + c, k + 2c, …, k + p/c ≡ k}` — the rows of
//! a team together cover every team's block exactly once. The final
//! reduction sums the per-row partial forces on the team leader.
//!
//! Setting `c = 1` degenerates to Plimpton's particle decomposition
//! (a ring pipeline); `c = √p` to his force decomposition.

use nbody_comm::{Communicator, Phase};
use nbody_physics::{Boundary, Domain, ForceLaw, Particle};

use crate::grid::GridComms;
use crate::kernel::{accumulate_block, combine_forces, ComputeMeter};

/// Tag for the skew message (line 4).
pub const TAG_SKEW: u64 = 0x10;
/// Base tag for shift step `s` (line 6): `TAG_SHIFT + s`.
pub const TAG_SHIFT: u64 = 0x1000;

/// One force evaluation of Algorithm 1.
///
/// On entry, each team leader's `st` holds its id-block subset with force
/// accumulators cleared; `st` must be empty on non-leaders. On exit, the
/// leader's `st` holds the subset with the total force from all `n`
/// particles accumulated; non-leader contents are unspecified.
///
/// The communication schedule is *identical on every rank* (as in the
/// paper's SPMD code): broadcast, skew, `p/c²` shift+update steps, reduce.
pub fn ca_all_pairs_forces<C: Communicator, F: ForceLaw>(
    gc: &GridComms<C>,
    st: &mut Vec<Particle>,
    law: &F,
    domain: &Domain,
    boundary: Boundary,
) {
    let teams = gc.grid.teams();
    let c = gc.grid.c();
    let steps = gc.grid.all_pairs_steps();
    let team = gc.team();
    let k = gc.row_index();
    debug_assert!(gc.is_leader() || st.is_empty(), "only leaders contribute particles");

    // Line 2: broadcast the team subset down the column.
    gc.col.set_phase(Phase::Broadcast);
    gc.col.bcast(0, st);

    // Line 3: copy to the exchange buffer.
    let mut exch = st.clone();
    // The paper's M = cn/p replicated working set: the owned block plus the
    // exchange copy, the memory the Eq. 2 bounds are evaluated against.
    gc.col
        .metrics()
        .gauge_max("mem_particles_hwm", (st.len() + exch.len()) as u64);

    // Pipeline-step tagging (0 = skew, s = shift step s): blocked waits in
    // the trace carry the step, so an analyzer can place every wait in the
    // skew/shift schedule and name the late sender.
    let tr = gc.col.tracer();
    // FLOP/byte accounting for the roofline audit.
    let meter = ComputeMeter::new(&gc.col.metrics(), law.flops_per_interaction());

    // Line 4: skew — row k shifts its buffer k teams east. After this, the
    // row-k processor of team t holds the block of team (t - k) mod teams.
    gc.col.set_phase(Phase::Skew);
    tr.set_step(Some(0));
    if k > 0 {
        let dst = (team + k) % teams;
        let src = (team + teams - k) % teams;
        exch = gc.row.sendrecv(dst, src, TAG_SKEW, &exch);
    }

    // Lines 5-8: shift by c, then update.
    for s in 1..=steps {
        gc.col.set_phase(Phase::Shift);
        tr.set_step(Some(s as u32));
        let dst = (team + c) % teams;
        let src = (team + teams - c) % teams;
        exch = gc.row.sendrecv(dst, src, TAG_SHIFT + s as u64, &exch);

        gc.col.set_phase(Phase::Other);
        meter.time(st.len(), exch.len(), || {
            accumulate_block(st, &exch, law, domain, boundary)
        });
    }
    tr.set_step(None);

    // Line 9: sum-reduce the partial forces onto the leader.
    gc.col.set_phase(Phase::Reduce);
    gc.col.reduce(0, st, combine_forces);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::id_block_subset;
    use crate::grid::ProcGrid;
    use nbody_comm::run_ranks;
    use nbody_physics::{init, reference, Counting, Gravity, RepulsiveInverseSquare};

    /// Run the CA all-pairs force evaluation on `p` ranks with replication
    /// `c`, returning the gathered, id-sorted particles.
    fn run_ca<F: ForceLaw + Clone + Send + Sync>(
        p: usize,
        c: usize,
        n: usize,
        seed: u64,
        law: F,
    ) -> Vec<Particle> {
        let domain = Domain::unit();
        let grid = ProcGrid::new_all_pairs(p, c).unwrap();
        let out = run_ranks(p, |world| {
            let gc = GridComms::new(world, grid);
            // Deterministic generation: every rank derives the full initial
            // population, leaders keep their block.
            let all = init::uniform(n, &domain, seed);
            let mut st = if gc.is_leader() {
                id_block_subset(&all, grid.teams(), gc.team())
            } else {
                Vec::new()
            };
            ca_all_pairs_forces(&gc, &mut st, &law, &domain, Boundary::Open);
            if gc.is_leader() {
                st
            } else {
                Vec::new()
            }
        });
        let mut flat: Vec<Particle> = out.into_iter().flatten().collect();
        flat.sort_by_key(|p| p.id);
        flat
    }

    fn serial(n: usize, seed: u64, law: &impl ForceLaw) -> Vec<Particle> {
        let domain = Domain::unit();
        let mut all = init::uniform(n, &domain, seed);
        reference::accumulate_forces(&mut all, law, &domain, Boundary::Open);
        all
    }

    #[test]
    fn counting_exact_across_grids() {
        // Every particle must see exactly n-1 sources, for every valid (p, c).
        for (p, c) in [(1, 1), (2, 1), (4, 1), (4, 2), (8, 2), (9, 3), (16, 2), (16, 4)] {
            for n in [16, 23] {
                let got = run_ca(p, c, n, 42, Counting);
                assert_eq!(got.len(), n);
                for q in &got {
                    assert_eq!(
                        q.force.x,
                        (n - 1) as f64,
                        "p={p} c={c} n={n} id={}",
                        q.id
                    );
                    assert_eq!(q.force.y, 0.0);
                }
            }
        }
    }

    #[test]
    fn physical_forces_match_serial() {
        let law = RepulsiveInverseSquare::default();
        let want = serial(24, 7, &law);
        for (p, c) in [(4, 2), (8, 2), (16, 4)] {
            let got = run_ca(p, c, 24, 7, law);
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.id, w.id);
                let err = (g.force - w.force).norm();
                assert!(
                    err <= 1e-12 * w.force.norm().max(1e-30),
                    "p={p} c={c} id={} err={err}",
                    g.id
                );
            }
        }
    }

    #[test]
    fn gravity_masses_match_serial() {
        let domain = Domain::unit();
        let law = Gravity::default();
        let n = 18;
        // Heterogeneous masses exercise the mass term in the kernel.
        let mut all = init::uniform(n, &domain, 3);
        for (i, p) in all.iter_mut().enumerate() {
            *p = p.with_mass(1.0 + (i % 5) as f64);
        }
        let mut want = all.clone();
        reference::accumulate_forces(&mut want, &law, &domain, Boundary::Open);

        let grid = ProcGrid::new_all_pairs(9, 3).unwrap();
        let out = run_ranks(9, |world| {
            let gc = GridComms::new(world, grid);
            let mut local = all.clone();
            let mut st = if gc.is_leader() {
                id_block_subset(&local, grid.teams(), gc.team())
            } else {
                Vec::new()
            };
            ca_all_pairs_forces(&gc, &mut st, &law, &domain, Boundary::Open);
            local.clear();
            if gc.is_leader() {
                st
            } else {
                local
            }
        });
        let mut got: Vec<Particle> = out.into_iter().flatten().collect();
        got.sort_by_key(|p| p.id);
        for (g, w) in got.iter().zip(&want) {
            let err = (g.force - w.force).norm();
            assert!(err <= 1e-12 * w.force.norm().max(1e-30), "id={}", g.id);
        }
    }

    #[test]
    fn degenerate_c1_is_particle_decomposition() {
        // c = 1: one row, so no broadcast/skew/reduce traffic; p shifts.
        let p = 4;
        let n = 12;
        let grid = ProcGrid::new_all_pairs(p, 1).unwrap();
        let domain = Domain::unit();
        let stats = run_ranks(p, |world| {
            let gc = GridComms::new(world, grid);
            let all = init::uniform(n, &domain, 5);
            let mut st = id_block_subset(&all, grid.teams(), gc.team());
            ca_all_pairs_forces(&gc, &mut st, &Counting, &domain, Boundary::Open);
            world.stats()
        });
        for s in &stats {
            // p shift messages (one per step), no skew (k = 0 for all).
            assert_eq!(s.phase(Phase::Shift).messages, p as u64);
            assert_eq!(s.phase(Phase::Skew).messages, 0);
            // Broadcast/reduce on a 1-rank column are no-ops.
            assert_eq!(s.phase(Phase::Broadcast).collectives, 0);
            assert_eq!(s.phase(Phase::Reduce).collectives, 0);
        }
    }

    #[test]
    fn force_decomposition_extreme_has_one_shift() {
        // c = sqrt(p): a single shift step (the force-decomposition extreme).
        let p = 16;
        let grid = ProcGrid::new_all_pairs(p, 4).unwrap();
        let domain = Domain::unit();
        let stats = run_ranks(p, |world| {
            let gc = GridComms::new(world, grid);
            let all = init::uniform(32, &domain, 5);
            let mut st = if gc.is_leader() {
                id_block_subset(&all, grid.teams(), gc.team())
            } else {
                Vec::new()
            };
            ca_all_pairs_forces(&gc, &mut st, &Counting, &domain, Boundary::Open);
            world.stats()
        });
        for s in &stats {
            assert_eq!(s.phase(Phase::Shift).messages, 1);
            assert_eq!(s.phase(Phase::Broadcast).collectives, 1);
            assert_eq!(s.phase(Phase::Reduce).collectives, 1);
        }
    }

    #[test]
    fn shift_message_count_is_p_over_c_squared() {
        // The latency term of Eq. 5: S_ca = O(p/c²) shift messages.
        let domain = Domain::unit();
        for (p, c) in [(8, 2), (16, 2), (16, 4), (27, 3)] {
            let grid = ProcGrid::new_all_pairs(p, c).unwrap();
            let stats = run_ranks(p, |world| {
                let gc = GridComms::new(world, grid);
                let all = init::uniform(p * 2, &domain, 1);
                let mut st = if gc.is_leader() {
                    id_block_subset(&all, grid.teams(), gc.team())
                } else {
                    Vec::new()
                };
                ca_all_pairs_forces(&gc, &mut st, &Counting, &domain, Boundary::Open);
                world.stats()
            });
            for s in &stats {
                assert_eq!(
                    s.phase(Phase::Shift).messages as usize,
                    p / (c * c),
                    "p={p} c={c}"
                );
            }
        }
    }

    #[test]
    fn uneven_block_sizes_still_exact() {
        // n not divisible by the team count.
        let got = run_ca(8, 2, 13, 9, Counting);
        assert_eq!(got.len(), 13);
        for q in &got {
            assert_eq!(q.force.x, 12.0, "id={}", q.id);
        }
    }
}
