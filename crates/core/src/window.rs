//! Cutoff interaction windows.
//!
//! With a cutoff radius, a team only needs the blocks of teams within `m`
//! regions of its own (Eq. 6 translates `r_c` into the processor span `m`).
//! A [`Window`] enumerates those relative offsets as *positions*
//! `0..len()`; the CA cutoff algorithm walks its exchange buffers through
//! the positions "modulo the cutoff window" (Algorithm 2, line 5/6).
//!
//! Position `j` corresponds to a signed offset `O[j]`; `O[0] = 0` is the
//! team itself. In 1D the offsets are `0, 1, …, m, −m, …, −1` (window size
//! `2m+1`); the 2D window is the cartesian product of two such axes
//! (Fig. 5), linearized exactly as the paper recommends: "linearizing the
//! high-dimensional space, calculating shifts in 1D, and mapping the
//! pattern back into the original space".
//!
//! Offsets that land outside the team grid return `None`: the simulation
//! space is *not* periodic (the paper's §IV.D attributes its cutoff load
//! imbalance to boundary teams having fewer interactions), so edge teams
//! simply have truncated windows.

use nbody_physics::Domain;

/// A traversal window over team offsets. Implementations must enumerate
/// each needed offset exactly once, with position 0 being the zero offset.
pub trait Window: Clone + Send + Sync {
    /// Number of positions `W` in the window.
    fn len(&self) -> usize;

    /// Whether the window is empty (never true for valid windows — the own
    /// team offset is always present).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of teams in the grid.
    fn teams(&self) -> usize;

    /// `team + O[j]`, or `None` if it falls outside the team grid.
    fn apply(&self, team: usize, j: usize) -> Option<usize>;

    /// `team − O[j]`, or `None` if it falls outside the team grid.
    fn apply_back(&self, team: usize, j: usize) -> Option<usize>;

    /// Whether the window wraps around a periodic team grid (offsets are
    /// then always valid). Clipped windows return `false`.
    fn is_periodic(&self) -> bool {
        false
    }
}

/// Map a window position to a signed offset in `[-m, m]`:
/// `0, 1, …, m, −m, …, −1`.
#[inline]
fn signed_offset(j: usize, m: usize) -> i64 {
    let w = 2 * m + 1;
    debug_assert!(j < w);
    if j <= m {
        j as i64
    } else {
        j as i64 - w as i64
    }
}

/// The 1D window: `2m + 1` slab offsets along the x axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window1d {
    teams: usize,
    m: usize,
}

impl Window1d {
    /// Window spanning `m` teams on each side. `m` is clamped to
    /// `teams - 1` (beyond that the window already covers every team).
    pub fn new(teams: usize, m: usize) -> Self {
        assert!(teams > 0);
        Window1d {
            teams,
            m: m.min(teams - 1),
        }
    }

    /// Derive the span from a cutoff radius: with slab width
    /// `w = length_x / teams`, any pair within `r_c` lies within
    /// `floor(r_c/w) + 1` slabs. (One more than the paper's
    /// `m = r_c/w` to stay correct when `r_c` is not a multiple of `w`;
    /// see DESIGN.md.)
    pub fn from_cutoff(domain: &Domain, teams: usize, r_c: f64) -> Self {
        assert!(r_c > 0.0);
        let w = domain.length_x() / teams as f64;
        let m = (r_c / w).floor() as usize + 1;
        Window1d::new(teams, m)
    }

    /// The span `m` actually in use (after clamping).
    pub fn m(&self) -> usize {
        self.m
    }

    fn offset(&self, j: usize) -> i64 {
        signed_offset(j, self.m)
    }

    fn shifted(&self, team: usize, delta: i64) -> Option<usize> {
        let t = team as i64 + delta;
        (t >= 0 && t < self.teams as i64).then_some(t as usize)
    }
}

impl Window for Window1d {
    fn len(&self) -> usize {
        2 * self.m + 1
    }

    fn teams(&self) -> usize {
        self.teams
    }

    fn apply(&self, team: usize, j: usize) -> Option<usize> {
        self.shifted(team, self.offset(j))
    }

    fn apply_back(&self, team: usize, j: usize) -> Option<usize> {
        self.shifted(team, -self.offset(j))
    }
}

/// The 2D window: `(2mx+1) × (2my+1)` offsets over a `tx × ty` team grid
/// (teams linearized row-major: `t = cy · tx + cx`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window2d {
    tx: usize,
    ty: usize,
    mx: usize,
    my: usize,
}

impl Window2d {
    /// Window spanning `mx`/`my` team cells per direction (clamped to the
    /// grid dimensions).
    pub fn new(tx: usize, ty: usize, mx: usize, my: usize) -> Self {
        assert!(tx > 0 && ty > 0);
        Window2d {
            tx,
            ty,
            mx: mx.min(tx - 1),
            my: my.min(ty - 1),
        }
    }

    /// Derive spans from a cutoff radius on a `tx × ty` decomposition.
    pub fn from_cutoff(domain: &Domain, tx: usize, ty: usize, r_c: f64) -> Self {
        assert!(r_c > 0.0);
        let wx = domain.length_x() / tx as f64;
        let wy = domain.length_y() / ty as f64;
        let mx = (r_c / wx).floor() as usize + 1;
        let my = (r_c / wy).floor() as usize + 1;
        Window2d::new(tx, ty, mx, my)
    }

    /// Grid dimensions `(tx, ty)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.tx, self.ty)
    }

    /// Window spans `(mx, my)`.
    pub fn spans(&self) -> (usize, usize) {
        (self.mx, self.my)
    }

    fn offset2(&self, j: usize) -> (i64, i64) {
        let wx = 2 * self.mx + 1;
        let ox = signed_offset(j % wx, self.mx);
        let oy = signed_offset(j / wx, self.my);
        (ox, oy)
    }

    fn shifted(&self, team: usize, dx: i64, dy: i64) -> Option<usize> {
        let cx = (team % self.tx) as i64 + dx;
        let cy = (team / self.tx) as i64 + dy;
        (cx >= 0 && cx < self.tx as i64 && cy >= 0 && cy < self.ty as i64)
            .then(|| cy as usize * self.tx + cx as usize)
    }
}

impl Window for Window2d {
    fn len(&self) -> usize {
        (2 * self.mx + 1) * (2 * self.my + 1)
    }

    fn teams(&self) -> usize {
        self.tx * self.ty
    }

    fn apply(&self, team: usize, j: usize) -> Option<usize> {
        let (ox, oy) = self.offset2(j);
        self.shifted(team, ox, oy)
    }

    fn apply_back(&self, team: usize, j: usize) -> Option<usize> {
        let (ox, oy) = self.offset2(j);
        self.shifted(team, -ox, -oy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn signed_offsets_enumerate_symmetric_range() {
        let offs: Vec<i64> = (0..7).map(|j| signed_offset(j, 3)).collect();
        assert_eq!(offs, vec![0, 1, 2, 3, -3, -2, -1]);
    }

    #[test]
    fn window1d_basics() {
        let w = Window1d::new(10, 2);
        assert_eq!(w.len(), 5);
        assert_eq!(w.teams(), 10);
        assert_eq!(w.apply(5, 0), Some(5));
        assert_eq!(w.apply(5, 2), Some(7));
        assert_eq!(w.apply(5, 3), Some(3)); // offset -2
        assert_eq!(w.apply_back(5, 3), Some(7));
        // Edge truncation.
        assert_eq!(w.apply(9, 1), None);
        assert_eq!(w.apply(0, 4), None); // offset -1
    }

    #[test]
    fn window1d_position_zero_is_self() {
        for teams in [1, 3, 9] {
            let w = Window1d::new(teams, 2);
            for t in 0..teams {
                assert_eq!(w.apply(t, 0), Some(t));
                assert_eq!(w.apply_back(t, 0), Some(t));
            }
        }
    }

    #[test]
    fn window1d_clamps_to_grid() {
        let w = Window1d::new(4, 100);
        assert_eq!(w.m(), 3);
        assert_eq!(w.len(), 7);
    }

    #[test]
    fn window1d_from_cutoff_covers_all_pairs_within_rc() {
        // Domain [0,1), 8 slabs of width 0.125, r_c = 0.2:
        // floor(0.2/0.125)+1 = 2.
        let d = Domain::unit();
        let w = Window1d::from_cutoff(&d, 8, 0.2);
        assert_eq!(w.m(), 2);
        // Worst case: x at the right edge of slab t, y = x + r_c lands
        // 0.2/0.125 = 1.6 slabs away -> at most slab t+2. Covered.
        let reachable: HashSet<usize> = (0..w.len()).filter_map(|j| w.apply(3, j)).collect();
        for t in 1..=5 {
            assert!(reachable.contains(&t));
        }
    }

    #[test]
    fn window1d_neighbors_cover_each_team_once() {
        let w = Window1d::new(9, 3);
        for t in 0..9 {
            let hits: Vec<usize> = (0..w.len()).filter_map(|j| w.apply_back(t, j)).collect();
            let set: HashSet<usize> = hits.iter().copied().collect();
            assert_eq!(hits.len(), set.len(), "no duplicates for team {t}");
            // Exactly the teams within distance 3.
            for b in 0..9usize {
                assert_eq!(
                    set.contains(&b),
                    (b as i64 - t as i64).abs() <= 3,
                    "team {t} block {b}"
                );
            }
        }
    }

    #[test]
    fn window2d_basics() {
        let w = Window2d::new(4, 3, 1, 1);
        assert_eq!(w.len(), 9);
        assert_eq!(w.teams(), 12);
        assert_eq!(w.dims(), (4, 3));
        // Team 5 = (1, 1). Offset (1, 1) -> (2, 2) = team 10.
        let j_11 = 1 + 3; // jx=1 (ox=1), jy=1 (oy=1), wx=3
        assert_eq!(w.apply(5, j_11), Some(10));
        assert_eq!(w.apply_back(5, j_11), Some(0));
        assert_eq!(w.apply(5, 0), Some(5));
    }

    #[test]
    fn window2d_corner_truncation() {
        let w = Window2d::new(3, 3, 1, 1);
        // Team 0 = (0,0): only offsets with ox >= 0, oy >= 0 are valid.
        let valid: Vec<usize> = (0..9).filter_map(|j| w.apply(0, j)).collect();
        let set: HashSet<usize> = valid.iter().copied().collect();
        assert_eq!(set, HashSet::from([0, 1, 3, 4]));
        // Center team 4 = (1,1): full 3x3 neighborhood.
        let all: HashSet<usize> = (0..9).filter_map(|j| w.apply(4, j)).collect();
        assert_eq!(all.len(), 9);
    }

    #[test]
    fn window2d_apply_and_back_are_inverse() {
        let w = Window2d::new(5, 4, 2, 1);
        for t in 0..w.teams() {
            for j in 0..w.len() {
                if let Some(u) = w.apply(t, j) {
                    assert_eq!(w.apply_back(u, j), Some(t), "t={t} j={j}");
                }
            }
        }
    }

    #[test]
    fn window2d_from_cutoff() {
        let d = Domain::unit();
        let w = Window2d::from_cutoff(&d, 4, 4, 0.25);
        // cell width 0.25: floor(1)+1 = 2, clamped to 3 -> 2.
        assert_eq!(w.spans(), (2, 2));
        assert_eq!(w.len(), 25);
    }

    #[test]
    fn degenerate_single_team_window() {
        let w = Window1d::new(1, 5);
        assert_eq!(w.len(), 1);
        assert_eq!(w.apply(0, 0), Some(0));
        let w2 = Window2d::new(1, 1, 2, 2);
        assert_eq!(w2.len(), 1);
    }
}

/// The 3D window (§IV.C): `(2mx+1)·(2my+1)·(2mz+1)` offsets over a
/// `tx × ty × tz` team grid (row-major: `t = (cz·ty + cy)·tx + cx`).
///
/// The executable physics of this reproduction is 2D (the paper's
/// experiments are 1D and 2D), but the communication schedule of the
/// multi-dimensional generalization is dimension-agnostic — this window
/// lets the simulator quantify §IV.C's observation that "communication
/// avoidance becomes especially important in higher dimensions because
/// the number of neighbors is exponential in the dimensionality".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window3d {
    dims: [usize; 3],
    spans: [usize; 3],
}

impl Window3d {
    /// Window spanning `m[i]` cells per direction along axis `i`
    /// (clamped to the grid).
    pub fn new(dims: [usize; 3], spans: [usize; 3]) -> Self {
        assert!(dims.iter().all(|&d| d > 0));
        let spans = [
            spans[0].min(dims[0] - 1),
            spans[1].min(dims[1] - 1),
            spans[2].min(dims[2] - 1),
        ];
        Window3d { dims, spans }
    }

    /// Derive per-axis spans from a cutoff radius on a unit cube divided
    /// into `dims` cells.
    pub fn from_cutoff(dims: [usize; 3], rc_fraction: f64) -> Self {
        assert!(rc_fraction > 0.0);
        let spans = [
            (rc_fraction * dims[0] as f64).floor() as usize + 1,
            (rc_fraction * dims[1] as f64).floor() as usize + 1,
            (rc_fraction * dims[2] as f64).floor() as usize + 1,
        ];
        Window3d::new(dims, spans)
    }

    /// Per-axis window widths `2m+1`.
    fn widths(&self) -> [usize; 3] {
        [
            2 * self.spans[0] + 1,
            2 * self.spans[1] + 1,
            2 * self.spans[2] + 1,
        ]
    }

    fn offset3(&self, j: usize) -> [i64; 3] {
        let [wx, wy, _] = self.widths();
        [
            signed_offset(j % wx, self.spans[0]),
            signed_offset((j / wx) % wy, self.spans[1]),
            signed_offset(j / (wx * wy), self.spans[2]),
        ]
    }

    fn shifted(&self, team: usize, delta: [i64; 3]) -> Option<usize> {
        let [tx, ty, _] = self.dims;
        let c = [
            (team % tx) as i64 + delta[0],
            ((team / tx) % ty) as i64 + delta[1],
            (team / (tx * ty)) as i64 + delta[2],
        ];
        for (ci, di) in c.iter().zip(&self.dims) {
            if *ci < 0 || *ci >= *di as i64 {
                return None;
            }
        }
        Some((c[2] as usize * ty + c[1] as usize) * tx + c[0] as usize)
    }
}

impl Window for Window3d {
    fn len(&self) -> usize {
        let [wx, wy, wz] = self.widths();
        wx * wy * wz
    }

    fn teams(&self) -> usize {
        self.dims[0] * self.dims[1] * self.dims[2]
    }

    fn apply(&self, team: usize, j: usize) -> Option<usize> {
        let o = self.offset3(j);
        self.shifted(team, o)
    }

    fn apply_back(&self, team: usize, j: usize) -> Option<usize> {
        let [ox, oy, oz] = self.offset3(j);
        self.shifted(team, [-ox, -oy, -oz])
    }
}

#[cfg(test)]
mod window3d_tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn window3d_size_grows_exponentially_with_dimension() {
        // Same per-axis span m=2: 1D -> 5, 2D -> 25, 3D -> 125 positions.
        let w1 = Window1d::new(64, 2);
        let w2 = Window2d::new(8, 8, 2, 2);
        let w3 = Window3d::new([4, 4, 4], [2, 2, 2]);
        assert_eq!(w1.len(), 5);
        assert_eq!(w2.len(), 25);
        assert_eq!(w3.len(), 125);
    }

    #[test]
    fn window3d_apply_and_back_invert() {
        let w = Window3d::new([3, 4, 5], [1, 1, 2]);
        for t in 0..w.teams() {
            for j in 0..w.len() {
                if let Some(u) = w.apply(t, j) {
                    assert_eq!(w.apply_back(u, j), Some(t), "t={t} j={j}");
                }
            }
        }
    }

    #[test]
    fn window3d_position_zero_is_self() {
        let w = Window3d::new([3, 3, 3], [1, 1, 1]);
        for t in 0..27 {
            assert_eq!(w.apply(t, 0), Some(t));
        }
    }

    #[test]
    fn window3d_center_sees_full_neighborhood_corners_truncated() {
        let w = Window3d::new([3, 3, 3], [1, 1, 1]);
        let center = 13; // (1,1,1)
        let all: HashSet<usize> = (0..w.len()).filter_map(|j| w.apply(center, j)).collect();
        assert_eq!(all.len(), 27);
        let corner: HashSet<usize> = (0..w.len()).filter_map(|j| w.apply(0, j)).collect();
        assert_eq!(corner.len(), 8, "corner team sees only its octant");
    }

    #[test]
    fn window3d_offsets_unique_per_team() {
        let w = Window3d::new([4, 3, 2], [1, 1, 1]);
        for t in 0..w.teams() {
            let hits: Vec<usize> = (0..w.len()).filter_map(|j| w.apply(t, j)).collect();
            let set: HashSet<usize> = hits.iter().copied().collect();
            assert_eq!(hits.len(), set.len(), "team {t}");
        }
    }
}
