//! Communication-schedule generators.
//!
//! Every distributed algorithm in this crate has a twin here that emits its
//! exact per-rank operation stream ([`Op`]) — same messages, same sizes
//! (using the paper's 52-byte wire particles), same collectives, same
//! compute volume. The discrete-event simulator in `nbody-netsim` replays
//! these schedules at full paper scale (tens of thousands of ranks); the
//! integration tests verify schedule-vs-execution equivalence by comparing
//! per-phase message and byte counts against instrumented `ThreadComm` runs.

use nbody_comm::{Phase, PHASE_COUNT};
use nbody_netsim::{CollNet, Op, TeamSpec};
use nbody_physics::particle::PARTICLE_WIRE_BYTES;

use crate::dist::block_range;
use crate::grid::ProcGrid;
use crate::kernel::block_interactions;
use crate::window::Window;

/// Wire bytes of a block of `len` particles.
#[inline]
fn bytes_of(len: usize) -> u64 {
    (len * PARTICLE_WIRE_BYTES) as u64
}

/// Parameters of the CA all-pairs schedule (Algorithm 1) under the
/// id-block distribution of `n` particles.
#[derive(Debug, Clone)]
pub struct AllPairsParams {
    /// Processor grid (validated for all-pairs).
    pub grid: ProcGrid,
    /// Total particles.
    pub n: usize,
    /// Network used by the team collectives.
    pub coll_net: CollNet,
}

impl AllPairsParams {
    /// Uniform all-pairs schedule on `p` ranks with replication `c`.
    pub fn new(p: usize, c: usize, n: usize) -> Self {
        AllPairsParams {
            grid: ProcGrid::new_all_pairs(p, c).expect("invalid all-pairs grid"),
            n,
            coll_net: CollNet::Torus,
        }
    }

    fn block_len(&self, b: usize) -> usize {
        block_range(self.n, self.grid.teams(), b).len()
    }

    /// The op stream of `rank`.
    pub fn program(&self, rank: usize) -> Box<dyn Iterator<Item = Op> + '_> {
        let grid = self.grid;
        let teams = grid.teams();
        let c = grid.c();
        let steps = grid.all_pairs_steps();
        let t = grid.team_of(rank);
        let k = grid.row_of(rank);
        let col_team = TeamSpec::new(t, teams, c);
        let my_bytes = bytes_of(self.block_len(t));
        let net = self.coll_net;

        let mut prologue: Vec<Op> = Vec::new();
        if c > 1 {
            prologue.push(Op::Bcast {
                team: col_team,
                bytes: my_bytes,
                phase: Phase::Broadcast,
                net,
            });
        }
        if k > 0 {
            prologue.push(Op::Send {
                to: grid.rank_at((t + k) % teams, k),
                bytes: my_bytes,
                phase: Phase::Skew,
            });
            prologue.push(Op::Recv {
                from: grid.rank_at((t + teams - k) % teams, k),
                phase: Phase::Skew,
            });
        }

        let body = (1..=steps).flat_map(move |s| {
            // Block held before the s-th shift: t - k - (s-1)c; after: - sc.
            let cur = (t + 2 * teams - (k + (s - 1) * c) % teams) % teams;
            let incoming = (t + 2 * teams - (k + s * c) % teams) % teams;
            [
                Op::Send {
                    to: grid.rank_at((t + c) % teams, k),
                    bytes: bytes_of(self.block_len(cur)),
                    phase: Phase::Shift,
                },
                Op::Recv {
                    from: grid.rank_at((t + teams - c) % teams, k),
                    phase: Phase::Shift,
                },
                Op::Compute {
                    interactions: block_interactions(
                        self.block_len(t),
                        self.block_len(incoming),
                        incoming == t,
                    ),
                },
            ]
        });

        let mut epilogue: Vec<Op> = Vec::new();
        if c > 1 {
            epilogue.push(Op::Reduce {
                team: col_team,
                bytes: my_bytes,
                phase: Phase::Reduce,
                net,
            });
        }

        Box::new(prologue.into_iter().chain(body).chain(epilogue))
    }
}

/// A crude model of per-step spatial re-assignment traffic for the cutoff
/// figures: each team leader exchanges `bytes` with both slab neighbors
/// (the realized traffic of near-uniform flows; see DESIGN.md).
#[derive(Debug, Clone, Copy)]
pub struct ReassignModel {
    /// Migrating payload per neighbor, in bytes.
    pub bytes: u64,
}

/// Parameters of the CA cutoff schedule (Algorithm 2 and its 2D
/// generalization) under a spatial distribution with per-team block sizes.
#[derive(Debug, Clone)]
pub struct CutoffParams<W: Window> {
    /// Processor grid (cutoff grids only need `c | p`).
    pub grid: ProcGrid,
    /// The interaction window.
    pub window: W,
    /// Particles owned by each team (load imbalance flows from here).
    pub block_sizes: Vec<usize>,
    /// Network used by the team collectives.
    pub coll_net: CollNet,
    /// Optional re-assignment traffic appended after the force phase.
    pub reassign: Option<ReassignModel>,
}

impl<W: Window> CutoffParams<W> {
    /// Build a cutoff schedule; `block_sizes.len()` must equal the team
    /// count and the window must validate against the grid.
    pub fn new(grid: ProcGrid, window: W, block_sizes: Vec<usize>) -> Self {
        assert_eq!(block_sizes.len(), grid.teams(), "one block size per team");
        crate::cutoff::validate_cutoff(&window, grid.teams(), grid.c())
            .expect("invalid cutoff configuration");
        CutoffParams {
            grid,
            window,
            block_sizes,
            coll_net: CollNet::Torus,
            reassign: None,
        }
    }

    /// Attach a re-assignment traffic model.
    pub fn with_reassign(mut self, model: ReassignModel) -> Self {
        self.reassign = Some(model);
        self
    }

    /// The op stream of `rank`, mirroring
    /// [`ca_cutoff_forces`](crate::cutoff::ca_cutoff_forces) exactly.
    pub fn program(&self, rank: usize) -> Box<dyn Iterator<Item = Op> + '_> {
        let grid = self.grid;
        let teams = grid.teams();
        let c = grid.c();
        let w = self.window.len();
        let t = grid.team_of(rank);
        let k = grid.row_of(rank);
        let col_team = TeamSpec::new(t, teams, c);
        let my_bytes = bytes_of(self.block_sizes[t]);
        let net = self.coll_net;
        let window = &self.window;

        let mut prologue: Vec<Op> = Vec::new();
        if c > 1 {
            prologue.push(Op::Bcast {
                team: col_team,
                bytes: my_bytes,
                phase: Phase::Broadcast,
                net,
            });
        }
        if k > 0 {
            if let Some(dst) = window.apply(t, k) {
                prologue.push(Op::Send {
                    to: grid.rank_at(dst, k),
                    bytes: my_bytes,
                    phase: Phase::Skew,
                });
            }
            if let Some(b) = window.apply_back(t, k) {
                prologue.push(Op::Recv {
                    from: grid.rank_at(b, k),
                    phase: Phase::Skew,
                });
            }
        }

        let steps = crate::cutoff::row_steps(w, c, k);
        let body = (1..=steps).flat_map(move |s| {
            let mut ops: Vec<Op> = Vec::with_capacity(4);
            let j_prev = (k + (s - 1) * c) % w;
            let j_new = (k + s * c) % w;
            let cur = window.apply_back(t, j_prev);

            if let Some(b) = cur {
                if let Some(holder) = window.apply(b, j_new) {
                    ops.push(Op::Send {
                        to: grid.rank_at(holder, k),
                        bytes: bytes_of(self.block_sizes[b]),
                        phase: Phase::Shift,
                    });
                }
            }
            if let Some(needy) = window.apply(t, j_new) {
                if window.apply(t, j_prev).is_none() {
                    ops.push(Op::Send {
                        to: grid.rank_at(needy, k),
                        bytes: my_bytes,
                        phase: Phase::Shift,
                    });
                }
            }
            let new_block = window.apply_back(t, j_new);
            if let Some(b) = new_block {
                let src = window.apply(b, j_prev).unwrap_or(b);
                ops.push(Op::Recv {
                    from: grid.rank_at(src, k),
                    phase: Phase::Shift,
                });
                if k + s * c < w + c {
                    ops.push(Op::Compute {
                        interactions: block_interactions(
                            self.block_sizes[t],
                            self.block_sizes[b],
                            b == t,
                        ),
                    });
                }
            }
            ops
        });

        let mut epilogue: Vec<Op> = Vec::new();
        if c > 1 {
            epilogue.push(Op::Reduce {
                team: col_team,
                bytes: my_bytes,
                phase: Phase::Reduce,
                net,
            });
        }
        // Re-assignment: leaders trade migrants with both slab neighbors.
        if let Some(model) = self.reassign {
            if k == 0 {
                for dir in [1i64, -1] {
                    let nb = t as i64 + dir;
                    if nb >= 0 && nb < teams as i64 {
                        epilogue.push(Op::Send {
                            to: grid.rank_at(nb as usize, 0),
                            bytes: model.bytes,
                            phase: Phase::Reassign,
                        });
                    }
                }
                for dir in [1i64, -1] {
                    let nb = t as i64 + dir;
                    if nb >= 0 && nb < teams as i64 {
                        epilogue.push(Op::Recv {
                            from: grid.rank_at(nb as usize, 0),
                            phase: Phase::Reassign,
                        });
                    }
                }
            }
        }

        Box::new(prologue.into_iter().chain(body).chain(epilogue))
    }
}

/// Parameters of the particle-decomposition ring baseline.
#[derive(Debug, Clone)]
pub struct ParticleRingParams {
    /// Ranks.
    pub p: usize,
    /// Total particles.
    pub n: usize,
}

impl ParticleRingParams {
    fn block_len(&self, b: usize) -> usize {
        block_range(self.n, self.p, b).len()
    }

    /// The op stream of `rank`.
    pub fn program(&self, rank: usize) -> Box<dyn Iterator<Item = Op> + '_> {
        let p = self.p;
        let me = self.block_len(rank);
        let own = std::iter::once(Op::Compute {
            interactions: block_interactions(me, me, true),
        });
        let body = (1..p).flat_map(move |s| {
            let cur = (rank + p - (s - 1)) % p; // block held before shift s
            let incoming = (rank + p - s) % p;
            [
                Op::Send {
                    to: (rank + 1) % p,
                    bytes: bytes_of(self.block_len(cur)),
                    phase: Phase::Shift,
                },
                Op::Recv {
                    from: (rank + p - 1) % p,
                    phase: Phase::Shift,
                },
                Op::Compute {
                    interactions: block_interactions(me, self.block_len(incoming), false),
                },
            ]
        });
        Box::new(own.chain(body))
    }
}

/// Parameters of the allgather (naive / `tree`) baseline.
#[derive(Debug, Clone)]
pub struct AllgatherParams {
    /// Ranks.
    pub p: usize,
    /// Total particles.
    pub n: usize,
    /// Network for the allgather (HwTree = the Fig. 2c/2d `tree` bars).
    pub net: CollNet,
}

impl AllgatherParams {
    /// The op stream of `rank`.
    pub fn program(&self, rank: usize) -> Box<dyn Iterator<Item = Op> + '_> {
        let me = block_range(self.n, self.p, rank).len();
        let per_member = bytes_of(self.n.div_ceil(self.p));
        Box::new(
            [
                Op::Allgather {
                    team: TeamSpec::new(0, 1, self.p),
                    bytes_per_member: per_member,
                    phase: Phase::Broadcast,
                    net: self.net,
                },
                Op::Compute {
                    interactions: block_interactions(me, self.n, true),
                },
            ]
            .into_iter(),
        )
    }
}

/// Parameters of Plimpton's force-decomposition baseline (`p = q²`).
#[derive(Debug, Clone)]
pub struct ForceDecompParams {
    /// Ranks (must be a perfect square).
    pub p: usize,
    /// Total particles.
    pub n: usize,
}

impl ForceDecompParams {
    /// The op stream of `rank`.
    pub fn program(&self, rank: usize) -> Box<dyn Iterator<Item = Op> + '_> {
        let q = (self.p as f64).sqrt().round() as usize;
        assert_eq!(q * q, self.p, "force decomposition needs square p");
        let (i, j) = (rank / q, rank % q);
        let len = |b: usize| block_range(self.n, q, b).len();
        let row = TeamSpec::new(i * q, 1, q);
        let col = TeamSpec::new(j, q, q);
        let mut ops = vec![
            Op::Bcast {
                team: row,
                bytes: bytes_of(len(i)),
                phase: Phase::Broadcast,
                net: CollNet::Torus,
            },
            Op::Bcast {
                team: col,
                bytes: bytes_of(len(j)),
                phase: Phase::Broadcast,
                net: CollNet::Torus,
            },
            Op::Compute {
                interactions: block_interactions(len(i), len(j), i == j),
            },
            Op::Reduce {
                team: row,
                bytes: bytes_of(len(i)),
                phase: Phase::Reduce,
                net: CollNet::Torus,
            },
        ];
        if q == 1 {
            // Single rank: collectives are no-ops; keep only compute to
            // match the executable's stats.
            ops.retain(|op| matches!(op, Op::Compute { .. }));
        }
        Box::new(ops.into_iter())
    }
}

/// Parameters of the spatial halo-exchange baseline (one team per rank).
#[derive(Debug, Clone)]
pub struct SpatialHaloParams<W: Window> {
    /// The interaction window (`window.teams()` ranks).
    pub window: W,
    /// Particles per rank region.
    pub block_sizes: Vec<usize>,
}

impl<W: Window> SpatialHaloParams<W> {
    /// The op stream of `rank`.
    pub fn program(&self, rank: usize) -> Box<dyn Iterator<Item = Op> + '_> {
        let window = &self.window;
        let me = self.block_sizes[rank];
        let own = std::iter::once(Op::Compute {
            interactions: block_interactions(me, me, true),
        });
        let sends = (1..window.len()).filter_map(move |j| {
            window.apply(rank, j).map(|dst| Op::Send {
                to: dst,
                bytes: bytes_of(me),
                phase: Phase::Shift,
            })
        });
        let recvs = (1..window.len()).flat_map(move |j| {
            let mut ops = Vec::with_capacity(2);
            if let Some(src) = window.apply_back(rank, j) {
                ops.push(Op::Recv {
                    from: src,
                    phase: Phase::Shift,
                });
                ops.push(Op::Compute {
                    interactions: block_interactions(me, self.block_sizes[src], false),
                });
            }
            ops
        });
        Box::new(own.chain(sends).chain(recvs))
    }
}

/// Aggregate op counts of a schedule, for schedule-vs-execution checks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Point-to-point sends per phase index.
    pub sends: [u64; PHASE_COUNT],
    /// Bytes sent point-to-point per phase index.
    pub send_bytes: [u64; PHASE_COUNT],
    /// Collectives per phase index.
    pub collectives: [u64; PHASE_COUNT],
    /// Total force evaluations.
    pub interactions: u64,
}

/// Count the operations of one program.
pub fn count_ops(program: impl Iterator<Item = Op>) -> OpCounts {
    let mut c = OpCounts::default();
    for op in program {
        match op {
            Op::Compute { interactions } => c.interactions += interactions,
            Op::Send { bytes, phase, .. } => {
                c.sends[phase.index()] += 1;
                c.send_bytes[phase.index()] += bytes;
            }
            Op::Recv { .. } => {}
            Op::Bcast { phase, .. } | Op::Reduce { phase, .. } | Op::Allgather { phase, .. } => {
                c.collectives[phase.index()] += 1;
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::{Window1d, Window2d};

    #[test]
    fn all_pairs_schedule_shape() {
        let params = AllPairsParams::new(16, 2, 64);
        for rank in 0..16 {
            let counts = count_ops(params.program(rank));
            // p/c^2 = 4 shift sends per rank.
            assert_eq!(counts.sends[Phase::Shift.index()], 4);
            // One bcast, one reduce.
            assert_eq!(counts.collectives[Phase::Broadcast.index()], 1);
            assert_eq!(counts.collectives[Phase::Reduce.index()], 1);
            // Rows > 0 skew once.
            let k = rank / 8;
            assert_eq!(counts.sends[Phase::Skew.index()], u64::from(k > 0));
        }
    }

    #[test]
    fn all_pairs_total_interactions_cover_n_squared() {
        // Summed over all ranks, compute ops must equal n(n-1) ordered pairs.
        for (p, c, n) in [(4, 1, 20), (8, 2, 24), (16, 4, 32), (9, 3, 17)] {
            let params = AllPairsParams::new(p, c, n);
            let total: u64 = (0..p)
                .map(|r| count_ops(params.program(r)).interactions)
                .sum();
            assert_eq!(total, (n * (n - 1)) as u64, "p={p} c={c} n={n}");
        }
    }

    #[test]
    fn all_pairs_shift_bytes_scale_inversely_with_c() {
        // W_ca = O(n/c): per-rank shift bytes with c=4 should be ~1/4 of c=1.
        let n = 256;
        let b1 = count_ops(AllPairsParams::new(16, 1, n).program(0)).send_bytes
            [Phase::Shift.index()];
        let b4 = count_ops(AllPairsParams::new(16, 4, n).program(0)).send_bytes
            [Phase::Shift.index()];
        assert_eq!(b1, 4 * b4);
    }

    #[test]
    fn ring_schedule_counts() {
        let params = ParticleRingParams { p: 6, n: 30 };
        let total: u64 = (0..6)
            .map(|r| count_ops(params.program(r)).interactions)
            .sum();
        assert_eq!(total, (30 * 29) as u64);
        let c0 = count_ops(params.program(0));
        assert_eq!(c0.sends[Phase::Shift.index()], 5);
    }

    #[test]
    fn cutoff_schedule_interactions_match_window() {
        // Uniform blocks: total interactions = sum over team pairs within
        // the window of len_t * len_b (minus self pairs).
        let grid = ProcGrid::new(16, 2).unwrap();
        let window = Window1d::new(8, 2);
        let sizes = vec![5usize; 8];
        let params = CutoffParams::new(grid, window, sizes.clone());
        let total: u64 = (0..16)
            .map(|r| count_ops(params.program(r)).interactions)
            .sum();
        let mut want = 0u64;
        for t in 0..8usize {
            for b in 0..8usize {
                if (t as i64 - b as i64).abs() <= 2 {
                    want += block_interactions(sizes[t], sizes[b], t == b);
                }
            }
        }
        assert_eq!(total, want);
    }

    #[test]
    fn cutoff_2d_schedule_interactions_match_window() {
        let grid = ProcGrid::new(18, 2).unwrap();
        let window = Window2d::new(3, 3, 1, 1);
        let sizes: Vec<usize> = (0..9).map(|i| 3 + i % 4).collect();
        let params = CutoffParams::new(grid, window, sizes.clone());
        let total: u64 = (0..18)
            .map(|r| count_ops(params.program(r)).interactions)
            .sum();
        let mut want = 0u64;
        for t in 0..9usize {
            let (tx, ty) = (t % 3, t / 3);
            for b in 0..9usize {
                let (bx, by) = (b % 3, b / 3);
                if tx.abs_diff(bx) <= 1 && ty.abs_diff(by) <= 1 {
                    want += block_interactions(sizes[t], sizes[b], t == b);
                }
            }
        }
        assert_eq!(total, want);
    }

    #[test]
    fn reassign_ops_only_on_leaders() {
        let grid = ProcGrid::new(8, 2).unwrap();
        let window = Window1d::new(4, 1);
        let params = CutoffParams::new(grid, window, vec![4; 4])
            .with_reassign(ReassignModel { bytes: 100 });
        for rank in 0..8 {
            let counts = count_ops(params.program(rank));
            let expect: u64 = if grid.row_of(rank) == 0 {
                // Interior leaders: 2 neighbors; edge leaders: 1.
                let t = grid.team_of(rank);
                if t == 0 || t == 3 {
                    1
                } else {
                    2
                }
            } else {
                0
            };
            assert_eq!(
                counts.sends[Phase::Reassign.index()],
                expect,
                "rank {rank}"
            );
        }
    }

    #[test]
    fn allgather_schedule() {
        let params = AllgatherParams {
            p: 4,
            n: 40,
            net: CollNet::HwTree,
        };
        let counts = count_ops(params.program(2));
        assert_eq!(counts.collectives[Phase::Broadcast.index()], 1);
        assert_eq!(counts.interactions, 10 * 40 - 10);
    }

    #[test]
    fn force_decomp_schedule_totals() {
        let params = ForceDecompParams { p: 9, n: 21 };
        let total: u64 = (0..9)
            .map(|r| count_ops(params.program(r)).interactions)
            .sum();
        assert_eq!(total, (21 * 20) as u64);
        let c = count_ops(params.program(4));
        assert_eq!(c.collectives[Phase::Broadcast.index()], 2);
        assert_eq!(c.collectives[Phase::Reduce.index()], 1);
    }

    #[test]
    fn spatial_halo_schedule_totals() {
        let window = Window1d::new(6, 2);
        let sizes = vec![7usize; 6];
        let params = SpatialHaloParams {
            window,
            block_sizes: sizes.clone(),
        };
        let total: u64 = (0..6)
            .map(|r| count_ops(params.program(r)).interactions)
            .sum();
        let mut want = 0u64;
        for t in 0..6usize {
            for b in 0..6usize {
                if (t as i64 - b as i64).abs() <= 2 {
                    want += block_interactions(sizes[t], sizes[b], t == b);
                }
            }
        }
        assert_eq!(total, want);
    }
}

/// Parameters of the midpoint-method schedule (§II.D neutral-territory
/// family): import halo of span `r_c/2`, the midpoint-owned force
/// evaluations, and a force-return round. Compute is costed as a
/// cell-list implementation would pay — only the in-range force
/// evaluations this rank owns (`me · k̄`), not the naive O(pool²) scan of
/// the executable reference (`midpoint_forces`), which favors simplicity.
/// Return payloads are modeled as one force record (24 bytes) per
/// imported particle — an upper bound.
#[derive(Debug, Clone)]
pub struct MidpointParams<W: Window> {
    /// The halo window (must span `r_c / 2`; one rank per team).
    pub window: W,
    /// Particles per rank region.
    pub block_sizes: Vec<usize>,
}

/// Bytes per returned force contribution (id + 2 components).
pub const FORCE_RECORD_BYTES: u64 = 24;

impl<W: Window> MidpointParams<W> {
    /// The op stream of `rank`.
    pub fn program(&self, rank: usize) -> Box<dyn Iterator<Item = Op> + '_> {
        let window = &self.window;
        let me = self.block_sizes[rank];

        let import_sends = (1..window.len()).filter_map(move |j| {
            window.apply(rank, j).map(|dst| Op::Send {
                to: dst,
                bytes: bytes_of(me),
                phase: Phase::Shift,
            })
        });
        let import_recvs = (1..window.len()).filter_map(move |j| {
            window.apply_back(rank, j).map(|src| Op::Recv {
                from: src,
                phase: Phase::Shift,
            })
        });
        // Owned force evaluations: for uniform density, a rank's share is
        // me x (neighbors within the full r_c reach) — the half-span halo
        // holds half of them, so double the imported count.
        let halo: usize = (1..window.len())
            .filter_map(|j| window.apply_back(rank, j))
            .map(|src| self.block_sizes[src])
            .sum();
        let scan = std::iter::once(Op::Compute {
            interactions: block_interactions(me, 2 * halo + me, false),
        });
        // Force return: one record per imported particle, per neighbor.
        let return_sends = (1..window.len()).filter_map(move |j| {
            window.apply_back(rank, j).map(|dst| Op::Send {
                to: dst,
                bytes: self.block_sizes[dst] as u64 * FORCE_RECORD_BYTES,
                phase: Phase::Reduce,
            })
        });
        let return_recvs = (1..window.len()).filter_map(move |j| {
            window.apply(rank, j).map(|src| Op::Recv {
                from: src,
                phase: Phase::Reduce,
            })
        });
        Box::new(
            import_sends
                .chain(import_recvs)
                .chain(scan)
                .chain(return_sends)
                .chain(return_recvs),
        )
    }
}

#[cfg(test)]
mod midpoint_schedule_tests {
    use super::*;
    use crate::window::Window1d;

    #[test]
    fn midpoint_message_counts_match_halo_structure() {
        let window = Window1d::new(8, 1); // span 1 each side
        let params = MidpointParams {
            window,
            block_sizes: vec![5; 8],
        };
        // Interior rank: 2 import sends + 2 return sends.
        let counts = count_ops(params.program(4));
        assert_eq!(counts.sends[Phase::Shift.index()], 2);
        assert_eq!(counts.sends[Phase::Reduce.index()], 2);
        // Edge rank: 1 each.
        let counts = count_ops(params.program(0));
        assert_eq!(counts.sends[Phase::Shift.index()], 1);
        assert_eq!(counts.sends[Phase::Reduce.index()], 1);
    }

    #[test]
    fn midpoint_import_bytes_are_half_spans() {
        // The midpoint halo (span r_c/2) moves fewer bytes than the full
        // spatial halo (span r_c) on the same decomposition.
        let domain = nbody_physics::Domain::unit();
        let r_c = 0.25;
        let teams = 16;
        let sizes = vec![8usize; teams];
        let full = SpatialHaloParams {
            window: Window1d::from_cutoff(&domain, teams, r_c),
            block_sizes: sizes.clone(),
        };
        let half = MidpointParams {
            window: Window1d::from_cutoff(&domain, teams, r_c / 2.0),
            block_sizes: sizes,
        };
        let rank = teams / 2;
        let full_bytes = count_ops(full.program(rank)).send_bytes[Phase::Shift.index()];
        let half_bytes = count_ops(half.program(rank)).send_bytes[Phase::Shift.index()];
        assert!(
            half_bytes < full_bytes,
            "midpoint import {half_bytes} vs spatial {full_bytes}"
        );
    }
}
