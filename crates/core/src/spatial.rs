//! The spatial-decomposition baseline (§II.C): no replication, halo
//! exchange with every neighbor inside the cutoff span.
//!
//! Each of `p` ranks owns a spatial region; ranks pair up with the
//! `O(m^d)` processors their cutoff reaches and exchange their blocks,
//! giving `S_spatial = O(m^d)` and `W_spatial = O(n m^d / p)`. This is
//! communication-optimal only for minimal memory `M = O(n/p)` — the `c = 1`
//! point the CA algorithm improves on.

use nbody_comm::{Communicator, Phase};
use nbody_physics::{Boundary, Domain, ForceLaw, Particle};

use crate::kernel::accumulate_block;
use crate::window::Window;

/// Tag base for halo-exchange messages.
pub const TAG_HALO: u64 = 0x3000;

/// Halo-exchange force evaluation: rank `r` owns the particles of region
/// `r` (`my`), exchanges blocks with every neighbor the window reaches, and
/// accumulates all forces locally. Works for 1D and 2D windows alike; the
/// window's team count must equal the communicator size (one team per rank,
/// `c = 1`).
pub fn spatial_halo_forces<C: Communicator, W: Window, F: ForceLaw>(
    world: &C,
    window: &W,
    my: &mut [Particle],
    law: &F,
    domain: &Domain,
    boundary: Boundary,
) {
    assert_eq!(
        boundary == Boundary::Periodic,
        window.is_periodic(),
        "boundary and window periodicity must agree"
    );
    assert_eq!(
        window.teams(),
        world.size(),
        "spatial baseline runs one team per rank"
    );
    let me = world.rank();

    // Own block first.
    world.set_phase(Phase::Other);
    let own = my.to_vec();
    accumulate_block(my, &own, law, domain, boundary);

    // Send to every neighbor that needs us, then receive and fold in each
    // neighbor's block. Position 0 is the self offset; skip it.
    world.set_phase(Phase::Shift);
    for j in 1..window.len() {
        if let Some(dst) = window.apply(me, j) {
            world.send(dst, TAG_HALO + j as u64, &own);
        }
    }
    for j in 1..window.len() {
        if let Some(src) = window.apply_back(me, j) {
            // src sent us its block at position j (we are src + O[j]).
            let block: Vec<Particle> = world.recv(src, TAG_HALO + j as u64);
            world.set_phase(Phase::Other);
            accumulate_block(my, &block, law, domain, boundary);
            world.set_phase(Phase::Shift);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{spatial_subset_1d, spatial_subset_2d, team_grid_dims};
    use crate::window::{Window1d, Window2d};
    use nbody_comm::run_ranks;
    use nbody_physics::{init, reference, Counting, Cutoff};

    #[test]
    fn halo_1d_matches_serial() {
        let domain = Domain::unit();
        let n = 50;
        let r_c = 0.2;
        let law = Cutoff::new(Counting, r_c);
        let mut want = init::uniform_1d(n, &domain, 4);
        reference::accumulate_forces(&mut want, &law, &domain, Boundary::Open);

        for p in [2, 4, 8] {
            let window = Window1d::from_cutoff(&domain, p, r_c);
            let out = run_ranks(p, |world| {
                let all = init::uniform_1d(n, &domain, 4);
                let mut my = spatial_subset_1d(&all, &domain, p, world.rank());
                spatial_halo_forces(world, &window, &mut my, &law, &domain, Boundary::Open);
                my
            });
            let mut got: Vec<Particle> = out.into_iter().flatten().collect();
            got.sort_by_key(|p| p.id);
            assert_eq!(got.len(), n);
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.force.x, w.force.x, "p={p} id={}", g.id);
            }
        }
    }

    #[test]
    fn halo_2d_matches_serial() {
        let domain = Domain::unit();
        let n = 70;
        let r_c = 0.3;
        let law = Cutoff::new(Counting, r_c);
        let mut want = init::uniform(n, &domain, 6);
        reference::accumulate_forces(&mut want, &law, &domain, Boundary::Open);

        let p = 8;
        let (tx, ty) = team_grid_dims(p);
        let window = Window2d::from_cutoff(&domain, tx, ty, r_c);
        let out = run_ranks(p, |world| {
            let all = init::uniform(n, &domain, 6);
            let mut my = spatial_subset_2d(&all, &domain, tx, ty, world.rank());
            spatial_halo_forces(world, &window, &mut my, &law, &domain, Boundary::Open);
            my
        });
        let mut got: Vec<Particle> = out.into_iter().flatten().collect();
        got.sort_by_key(|p| p.id);
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.force.x, w.force.x, "id={}", g.id);
        }
    }

    #[test]
    fn halo_message_count_is_window_size() {
        let domain = Domain::unit();
        let p = 8;
        let r_c = 0.2; // m = 2 on 8 slabs
        let window = Window1d::from_cutoff(&domain, p, r_c);
        let law = Cutoff::new(Counting, r_c);
        let stats = run_ranks(p, |world| {
            let all = init::uniform_1d(40, &domain, 1);
            let mut my = spatial_subset_1d(&all, &domain, p, world.rank());
            spatial_halo_forces(world, &window, &mut my, &law, &domain, Boundary::Open);
            world.stats()
        });
        // Interior ranks send to all 2m neighbors; edges fewer.
        let m = window.m() as u64;
        let max = stats.iter().map(|s| s.phase(Phase::Shift).messages).max();
        assert_eq!(max, Some(2 * m));
        let min = stats.iter().map(|s| s.phase(Phase::Shift).messages).min();
        assert_eq!(min, Some(m), "edge ranks have a one-sided halo");
    }
}
