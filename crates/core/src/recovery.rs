//! Fault-tolerant variants of the CA force drivers.
//!
//! The paper's algorithms assume a failure-free machine; at the scales its
//! model targets (Hopper: 153k cores), rank loss during a force evaluation
//! is a practical concern. The replication the algorithms already pay for
//! (`c` copies of every block, §IV.A) doubles as a recovery resource: as
//! long as one member of a team column survives, the lost rank's replicated
//! inputs can be reconstructed from a teammate and the evaluation re-run
//! from its checkpoint.
//!
//! The protocol wrapped around one force evaluation:
//!
//! 1. **Checkpoint.** After the team broadcast, every rank keeps an
//!    immutable copy of its post-broadcast input block (`nc/p` particles —
//!    the same replicated working set the paper's memory bound already
//!    charges for).
//! 2. **Attempt.** The skew/shift pipeline runs with deadline-bounded
//!    receives ([`Communicator::try_recv_timeout`]); a missing message
//!    surfaces as [`CommError::Timeout`] instead of a hang, and a rank the
//!    fault plan just killed observes [`CommError::PeerDead`] on itself.
//! 3. **Agreement.** Every rank reduces its local attempt status
//!    (`ok < transient < rank-dead`) with a column-then-row max-allreduce,
//!    so all `p` ranks agree on the worst outcome. A killed rank still
//!    participates here — it models the *replacement* process that the
//!    runtime would respawn in its slot.
//! 4. **Resync + retry.** On a dead rank, survivors of its column re-send
//!    the checkpoint with a team broadcast (valid whenever `c ≥ 2`); on a
//!    transient fault the checkpoint is already local. Every rank restores
//!    its checkpoint and re-enters the attempt under a fresh tag namespace,
//!    bounded by [`RetryPolicy::max_retries`] and
//!    [`RetryPolicy::budget`]. Each retry's receive deadline comes from the
//!    policy: transient faults back off exponentially (with deterministic
//!    seeded jitter, identical on every rank), while crash (`PeerDead`)
//!    retries use a fixed per-class deadline — a crash is detected
//!    immediately, so there is nothing to back off from.
//!
//! When a column loses every replica (including the whole of a `c = 1`
//! "column" of one rank), the loop cannot re-seed the lost block — but it
//! can still end the evaluation in an *agreed* degraded state: survivors
//! re-seed partially-dead columns, restore their checkpoints, and every
//! rank returns [`FaultError::ColumnsLost`] naming the same dead teams.
//! The simulation layer uses that verdict to shrink the world onto the
//! survivors and continue (see `sim.rs`); only when *every* team is lost
//! does the evaluation degrade to [`FaultError::Unrecoverable`].
//!
//! Because a retry restores the exact post-broadcast state and the
//! accumulation order is unchanged, recovered evaluations are
//! **bit-identical** to fault-free ones. Recovery traffic is attributed to
//! [`Phase::Recovery`] (excluded from the paper's cost model, priced
//! separately by `audit`) and counted in the `fault_*` /
//! `recovery_bytes_total` metrics.

use std::cell::Cell;
use std::time::{Duration, Instant};

use nbody_comm::{CommError, Communicator, EventKind, Phase};
use nbody_metrics::Counter;
use nbody_physics::{Boundary, Domain, ForceLaw, Particle};
use nbody_simhealth::state_fingerprint;

use crate::allpairs::{TAG_SHIFT, TAG_SKEW};
use crate::cutoff::{row_steps, validate_cutoff, TAG_CSHIFT, TAG_CSKEW};
use crate::grid::GridComms;
use crate::kernel::{
    accumulate_block, accumulate_block_potential, combine_forces, ComputeMeter,
};
use crate::window::Window;

/// Tag distance between retry attempts of one evaluation. Attempt `a` of
/// evaluation epoch `e` offsets every pipeline tag by
/// `e * EPOCH_TAG_STRIDE + a * ATTEMPT_TAG_STRIDE`, so a message a dead
/// attempt left in flight can never satisfy a later attempt's receive
/// (receives under chaos match on exact tags).
pub const ATTEMPT_TAG_STRIDE: u64 = 1 << 16;
/// Tag distance between force evaluations (timesteps). Keeps stale traffic
/// from an aborted attempt in step `t` from matching step `t + 1`'s tags.
pub const EPOCH_TAG_STRIDE: u64 = 1 << 20;

// Attempt statuses, max-reduced for global agreement: the ordering is the
// severity ordering, so the worst local outcome wins. A corrupt replica
// outranks a transient (its checkpoint must be re-seeded, not merely
// retried) but a dead rank outranks both (the dead-rank resync re-seeds
// every replica in the column anyway).
const STATUS_OK: u8 = 0;
const STATUS_TRANSIENT: u8 = 1;
const STATUS_CORRUPT: u8 = 2;
const STATUS_DEAD: u8 = 3;

/// The fault class a retry is responding to; each class gets its own
/// deadline schedule in the [`RetryPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// A lost/late message (`Timeout` and friends): the peer may just be
    /// slow, so deadlines back off exponentially to ride out congestion.
    Transient,
    /// A peer observed dead (`PeerDead`): detection is immediate and a
    /// replacement re-enters promptly, so the deadline stays fixed.
    PeerDead,
    /// A replica fingerprint mismatch (`StateCorrupt`): the corrupt
    /// checkpoint is re-seeded from a clean teammate and the retry
    /// re-enters promptly — like a crash, there is nothing to back off
    /// from, so the deadline stays fixed at the base.
    Corrupt,
}

impl FaultClass {
    /// Stable label used in flight-recorder events.
    pub fn label(&self) -> &'static str {
        match self {
            FaultClass::Transient => "transient",
            FaultClass::PeerDead => "peer-dead",
            FaultClass::Corrupt => "corrupt",
        }
    }
}

// splitmix64: the deterministic jitter source. Keyed only on
// (seed, epoch, attempt) — never the rank — so every rank derives the
// same deadline and the protocol stays symmetric.
fn unit_jitter(seed: u64, epoch: u64, attempt: u64) -> f64 {
    let mut z = seed
        .wrapping_add(epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(attempt.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// The retry policy of the recovery protocol: per-fault-class deadlines,
/// exponential backoff with deterministic seeded jitter, and hard caps on
/// both retry count and total wall-clock budget.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Deadline for each pipeline receive on the first attempt and the
    /// base of the transient-class backoff schedule.
    pub base_timeout: Duration,
    /// Fixed deadline used for retries after a crash
    /// ([`FaultClass::PeerDead`]) was the agreed failure.
    pub peer_dead_timeout: Duration,
    /// Multiplier applied to the transient-class deadline per retry
    /// (`1.0` disables backoff).
    pub backoff: f64,
    /// Jitter amplitude as a fraction of the deadline (`0.0` disables it);
    /// the drawn jitter is deterministic given [`RetryPolicy::seed`].
    pub jitter: f64,
    /// Retries after the initial attempt before giving up with
    /// [`FaultError::RetriesExhausted`].
    pub max_retries: usize,
    /// Total wall-clock budget for one evaluation including its retries;
    /// exceeding it fails the evaluation like retry exhaustion does.
    pub budget: Duration,
    /// Seed of the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base_timeout: Duration::from_secs(1),
            peer_dead_timeout: Duration::from_secs(1),
            backoff: 2.0,
            jitter: 0.1,
            max_retries: 3,
            budget: Duration::from_secs(60),
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// A policy with both per-class deadlines set to `ms` milliseconds.
    pub fn with_timeout_ms(ms: u64) -> Self {
        RetryPolicy {
            base_timeout: Duration::from_millis(ms),
            peer_dead_timeout: Duration::from_millis(ms),
            ..Default::default()
        }
    }

    /// A fully deterministic fixed-deadline policy (no backoff, no
    /// jitter): what the old `--fault-timeout-ms`/`--max-retries` pair
    /// expressed, kept for tests that assert exact attempt counts.
    pub fn fixed(ms: u64, max_retries: usize) -> Self {
        RetryPolicy {
            base_timeout: Duration::from_millis(ms),
            peer_dead_timeout: Duration::from_millis(ms),
            backoff: 1.0,
            jitter: 0.0,
            max_retries,
            budget: Duration::from_secs(3600),
            seed: 0,
        }
    }

    /// The receive deadline for `attempt` (1-based) given the fault class
    /// the previous attempt failed with. Deterministic across ranks.
    pub fn deadline(&self, class: FaultClass, attempt: usize, epoch: u64) -> Duration {
        let base = match class {
            FaultClass::Transient => {
                let exp = attempt.saturating_sub(1).min(16) as i32;
                self.base_timeout.as_secs_f64() * self.backoff.max(1.0).powi(exp)
            }
            FaultClass::PeerDead => self.peer_dead_timeout.as_secs_f64(),
            FaultClass::Corrupt => self.base_timeout.as_secs_f64(),
        };
        let jitter = base * self.jitter.clamp(0.0, 1.0) * unit_jitter(self.seed, epoch, attempt as u64);
        Duration::from_secs_f64((base + jitter).min(3600.0))
    }
}

/// Terminal failures of a fault-tolerant evaluation. Every rank returns the
/// same variant (the decision is taken on globally agreed state), so the
/// caller can shut the execution down cleanly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultError {
    /// Every team column lost every replica — no particle data survives
    /// anywhere and the evaluation cannot be completed at all.
    Unrecoverable {
        /// World rank reporting the failure.
        rank: usize,
        /// Replication factor in effect.
        c: usize,
    },
    /// One or more (but not all) team columns lost every replica. The
    /// lost blocks are gone, but the survivors agreed on exactly which
    /// teams died and hold their own checkpoints — the simulation layer
    /// can shrink the world onto the survivors and continue degraded.
    ColumnsLost {
        /// The teams whose every replica died, in ascending order
        /// (identical on every rank — the verdict is agreed).
        dead_teams: Vec<usize>,
        /// Replication factor in effect.
        c: usize,
    },
    /// Faults kept recurring past [`RetryPolicy::max_retries`] or the
    /// total [`RetryPolicy::budget`] ran out.
    RetriesExhausted {
        /// Attempts performed (initial + retries).
        attempts: usize,
    },
    /// A numerical-health sentinel fired: a NaN/Inf reached simulation
    /// state. Unlike the fault classes above this is not a machine fault
    /// — retrying reproduces it — so the run aborts into a postmortem
    /// with the blame attached.
    NumericalFault {
        /// World rank that caught the non-finite value.
        rank: usize,
        /// Timestep on which the sentinel fired.
        step: u64,
        /// The sentinel's blame string (phase, particle index, field).
        detail: String,
    },
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::Unrecoverable { rank, c } => write!(
                f,
                "rank {rank}: unrecoverable: every team column lost all {c} replicas; \
                 nothing survives to recover from"
            ),
            FaultError::ColumnsLost { dead_teams, c } => write!(
                f,
                "teams {dead_teams:?} lost all {c} replicas; survivors agreed to continue degraded"
            ),
            FaultError::RetriesExhausted { attempts } => {
                write!(f, "faults persisted through {attempts} attempts; giving up")
            }
            FaultError::NumericalFault { rank, step, detail } => {
                write!(f, "numerical fault on rank {rank} at step {step}: {detail}")
            }
        }
    }
}

impl std::error::Error for FaultError {}

/// What it took to complete a fault-tolerant evaluation (and, aggregated
/// at the simulation layer, a whole run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Attempts performed (1 = clean, fault-free run).
    pub attempts: usize,
    /// Whether any fault was detected (and survived).
    pub recovered: bool,
    /// Times the world shrank onto survivors (simulation-layer degraded
    /// mode; always 0 at the single-evaluation level).
    pub shrinks: usize,
    /// Particles dropped with dead columns across all shrinks.
    pub lost_particles: usize,
    /// World size after the last shrink (0 = the world never shrank).
    pub survivor_ranks: usize,
    /// Replica fingerprint mismatches the health cross-check detected
    /// (and repaired) during this evaluation.
    pub fingerprint_mismatches: usize,
}

/// Per-rank fault/recovery counters, registered against the live metrics
/// recorder so `report`/`audit` can price recovery overhead.
struct FaultCounters {
    detected: Counter,
    recovered: Counter,
    retries: Counter,
    resync_bytes: Counter,
}

impl FaultCounters {
    fn new<C: Communicator>(comm: &C) -> Self {
        let rec = comm.metrics();
        FaultCounters {
            detected: rec.counter("fault_detected_total", None),
            recovered: rec.counter("fault_recovered_total", None),
            retries: rec.counter("fault_retries_total", None),
            resync_bytes: rec.counter("recovery_bytes_total", None),
        }
    }
}

fn max_combine(acc: &mut u8, x: &u8) {
    if *x > *acc {
        *acc = *x;
    }
}

/// Column-then-row max-allreduce: every rank is in exactly one column and
/// one row, and every row spans all columns, so the second reduce leaves
/// the global maximum on all `p` ranks.
fn agree<C: Communicator>(gc: &GridComms<C>, local: u8) -> u8 {
    let mut buf = vec![local];
    gc.col.allreduce(&mut buf, max_combine);
    gc.row.allreduce(&mut buf, max_combine);
    buf[0]
}

/// Per-rank numerical-health state threaded through the fault-tolerant
/// drivers: enables the replica fingerprint cross-check and carries the
/// deterministic corruption injection used to test it.
///
/// One instance lives per rank for the whole run (the injection must fire
/// exactly once, across steps *and* retry attempts), so it holds interior
/// [`Cell`] state and is deliberately `!Sync` — construct it inside the
/// per-rank closure.
pub struct HealthMonitor {
    /// Run the fingerprint cross-check at the start of every recovery
    /// attempt (only meaningful when `c > 1`).
    pub fingerprint: bool,
    /// Silently flip one mantissa bit of the first checkpointed particle
    /// on world rank `.0` at evaluation epoch `.1` — the seeded corruption
    /// the cross-check must catch within one step.
    pub corrupt: Option<(usize, u64)>,
    corrupt_fired: Cell<bool>,
}

impl HealthMonitor {
    /// A monitor with the cross-check toggled and an optional seeded
    /// corruption target.
    pub fn new(fingerprint: bool, corrupt: Option<(usize, u64)>) -> HealthMonitor {
        HealthMonitor {
            fingerprint,
            corrupt,
            corrupt_fired: Cell::new(false),
        }
    }

    /// Fire the seeded corruption if this (rank, epoch) is the target and
    /// it has not fired yet. Corrupts the *checkpoint*, not the working
    /// copy: real silent corruption survives local retries, and so must
    /// the injected kind — only the cross-check's re-seed can clear it.
    fn maybe_corrupt(&self, world_rank: usize, epoch: u64, input: &mut [Particle]) {
        let Some((rank, step)) = self.corrupt else {
            return;
        };
        if rank != world_rank || step != epoch || self.corrupt_fired.get() {
            return;
        }
        self.corrupt_fired.set(true);
        if let Some(p) = input.first_mut() {
            p.pos.x = f64::from_bits(p.pos.x.to_bits() ^ (1 << 40));
        }
    }

    /// The cross-check: allgather every replica's state fingerprint down
    /// the column and majority-vote (ties break to the lowest row, which
    /// matches the broadcast root's copy). A rank in the minority returns
    /// [`CommError::StateCorrupt`] so the recovery loop can treat the
    /// divergence as its own fault class.
    ///
    /// Limitations, by construction: corruption on the broadcast root
    /// *before* the team broadcast replicates to every row and is
    /// invisible here (all copies agree), and at `c = 2` a corrupted row
    /// 0 wins the tiebreak — the mismatch is still *detected* and
    /// reported, but the repair converges on row 0's copy.
    fn crosscheck<C: Communicator>(
        &self,
        gc: &GridComms<C>,
        st: &[Particle],
        world_rank: usize,
        epoch: u64,
    ) -> Result<(), CommError> {
        if !self.fingerprint || gc.grid.c() < 2 {
            return Ok(());
        }
        gc.col.set_phase(Phase::Recovery);
        let fp = state_fingerprint(st);
        let all = gc.col.allgather(&[fp]);
        // Majority fingerprint; ties break to the lowest row.
        let mut majority = fp;
        let mut best = 0usize;
        for row in &all {
            let count = all.iter().filter(|other| other[0] == row[0]).count();
            if count > best {
                best = count;
                majority = row[0];
            }
        }
        if fp == majority {
            return Ok(());
        }
        let err = CommError::StateCorrupt {
            rank: world_rank,
            expected: majority,
            got: fp,
        };
        let tl = gc.col.timeline();
        tl.event(EventKind::ReplicaMismatch, Some(epoch), &err.to_string());
        gc.col
            .metrics()
            .counter("health_fingerprint_mismatch_total", None)
            .inc();
        Err(err)
    }
}

/// The retry/agreement/resync loop shared by both fault-tolerant drivers.
///
/// `st` must hold the post-broadcast input block; `attempt` runs one
/// fallible pipeline pass over `st` under the given tag offset, with the
/// given per-receive deadline. On success `st` holds the accumulated
/// partial forces and the caller performs the final reduction. On
/// [`FaultError::ColumnsLost`], `st` holds the restored *pre-force*
/// checkpoint on every surviving-column rank (empty on dead-column ranks)
/// so the caller can redistribute and shrink.
fn recovery_loop<C: Communicator>(
    gc: &GridComms<C>,
    st: &mut Vec<Particle>,
    policy: &RetryPolicy,
    epoch: u64,
    health: Option<&HealthMonitor>,
    mut attempt: impl FnMut(&mut Vec<Particle>, u64, Duration) -> Result<(), CommError>,
) -> Result<RecoveryReport, FaultError> {
    let c = gc.grid.c();
    let world_rank = gc.grid.rank_at(gc.team(), gc.row_index());
    let counters = FaultCounters::new(&gc.col);
    // The flight recorder: structured events land in the rank's bounded
    // ring so a postmortem bundle shows what recovery was doing when (and
    // if) the run degraded. Every recorded event carries `epoch` (the
    // timestep) as its step coordinate.
    let tl = gc.col.timeline();
    // The checkpoint: the replicated post-broadcast input. A transient
    // retry restores it locally; a dead rank gets it back from a teammate.
    let mut input = st.clone();
    tl.event(
        EventKind::Checkpoint,
        Some(epoch),
        &format!("{} particles", input.len()),
    );
    let started = Instant::now();
    let mut attempts = 0usize;
    let mut had_fault = false;
    let mut fp_mismatches = 0usize;
    let mut deadline = policy.deadline(FaultClass::Transient, 1, epoch);
    loop {
        attempts += 1;
        if let Some(h) = health {
            h.maybe_corrupt(world_rank, epoch, &mut input);
        }
        st.clone_from(&input);
        let tag_base =
            epoch * EPOCH_TAG_STRIDE + (attempts as u64 - 1) * ATTEMPT_TAG_STRIDE;
        // The cross-check runs on the restored checkpoint before the
        // pipeline touches the wire: a diverged replica is caught before
        // it can contaminate an entire evaluation.
        let outcome = match health.map_or(Ok(()), |h| h.crosscheck(gc, st, world_rank, epoch)) {
            Ok(()) => attempt(st, tag_base, deadline),
            Err(e) => Err(e),
        };
        let local = match outcome {
            Ok(()) => STATUS_OK,
            Err(CommError::PeerDead { .. }) => STATUS_DEAD,
            Err(CommError::StateCorrupt { .. }) => STATUS_CORRUPT,
            Err(_) => STATUS_TRANSIENT,
        };
        let self_dead = local == STATUS_DEAD;
        let self_corrupt = local == STATUS_CORRUPT;
        if local != STATUS_OK {
            counters.detected.inc();
            tl.event(
                EventKind::RecoveryAttempt,
                Some(epoch),
                &format!(
                    "attempt {attempts} failed locally: {} (deadline {}ms)",
                    if self_dead {
                        "rank dead"
                    } else if self_corrupt {
                        "replica corrupt"
                    } else {
                        "transient"
                    },
                    deadline.as_millis(),
                ),
            );
        }
        if self_dead {
            // The crash loses everything the rank held in memory; the
            // replacement process starts blank.
            st.clear();
            input.clear();
        }
        gc.col.set_phase(Phase::Recovery);
        let status = agree(gc, local);
        if status == STATUS_OK {
            if had_fault {
                counters.recovered.inc();
            }
            return Ok(RecoveryReport {
                attempts,
                recovered: had_fault,
                fingerprint_mismatches: fp_mismatches,
                ..RecoveryReport::default()
            });
        }
        had_fault = true;
        if status == STATUS_CORRUPT {
            fp_mismatches += 1;
        }
        if status == STATUS_DEAD {
            // Which rows of this column survive? The flags are identical
            // on every member of the column.
            let flags = gc.col.allgather(&[u8::from(self_dead)]);
            let src_row = flags.iter().position(|f| f[0] == 0);
            let column_lost = src_row.is_none();
            // Share per-column verdicts across the row: every row spans
            // all teams, so each rank learns the full dead-team set and
            // the verdict is globally agreed.
            let lost_map = gc.row.allgather(&[u8::from(column_lost)]);
            let dead_teams: Vec<usize> = lost_map
                .iter()
                .enumerate()
                .filter(|(_, f)| f[0] != 0)
                .map(|(t, _)| t)
                .collect();
            if dead_teams.len() == gc.grid.teams() {
                // Every column lost every replica: nothing survives.
                let err = FaultError::Unrecoverable { rank: world_rank, c };
                tl.event(EventKind::Unrecoverable, Some(epoch), &err.to_string());
                tl.mark_failure(&err.to_string());
                return Err(err);
            }
            if !dead_teams.is_empty() {
                // Degraded mode: the lost columns cannot be re-seeded, but
                // the survivors can agree to continue without them. Revive
                // killed ranks (the replacement process), re-seed
                // partially-dead surviving columns, and hand the caller
                // the pre-force checkpoint to shrink from.
                gc.col.fault_revive();
                if let Some(src_row) = src_row {
                    gc.col.bcast(src_row, &mut input);
                    tl.event(
                        EventKind::Resync,
                        Some(epoch),
                        &format!("checkpoint re-seeded from row {src_row} before shrink"),
                    );
                    if self_dead {
                        counters
                            .resync_bytes
                            .add((input.len() * std::mem::size_of::<Particle>()) as u64);
                    }
                }
                *st = input;
                let err = FaultError::ColumnsLost { dead_teams, c };
                tl.event(EventKind::RecoveryAttempt, Some(epoch), &err.to_string());
                return Err(err);
            }
            // All columns kept at least one replica: plain resync below.
        }
        if attempts > policy.max_retries || started.elapsed() > policy.budget {
            let err = FaultError::RetriesExhausted { attempts };
            tl.event(EventKind::RetryExhausted, Some(epoch), &err.to_string());
            tl.mark_failure(&err.to_string());
            return Err(err);
        }
        // The replacement process comes back up for the retry.
        gc.col.fault_revive();
        if status == STATUS_DEAD {
            // Re-seed dead ranks from the lowest surviving row of their
            // column. The flags are identical on all members of a column,
            // so every member picks the same broadcast root (recomputed
            // here: the allgather above consumed per-attempt state).
            let flags = gc.col.allgather(&[u8::from(self_dead)]);
            let src_row = flags
                .iter()
                .position(|f| f[0] == 0)
                .expect("agreed recoverable, so a survivor exists");
            gc.col.bcast(src_row, &mut input);
            tl.event(
                EventKind::Resync,
                Some(epoch),
                &format!("checkpoint re-seeded from row {src_row}"),
            );
            if self_dead {
                counters
                    .resync_bytes
                    .add((input.len() * std::mem::size_of::<Particle>()) as u64);
            }
        }
        if status == STATUS_CORRUPT {
            // Repair the diverged replica: re-seed every checkpoint in the
            // column from its lowest row in the cross-check majority. The
            // corrupt flags are identical on all members of a column (the
            // majority vote is deterministic), so every member picks the
            // same broadcast root.
            let flags = gc.col.allgather(&[u8::from(self_corrupt)]);
            let src_row = flags
                .iter()
                .position(|f| f[0] == 0)
                .expect("the cross-check minority never includes every row");
            gc.col.bcast(src_row, &mut input);
            tl.event(
                EventKind::Resync,
                Some(epoch),
                &format!("checkpoint re-seeded from row {src_row} after fingerprint mismatch"),
            );
            if self_corrupt {
                counters
                    .resync_bytes
                    .add((input.len() * std::mem::size_of::<Particle>()) as u64);
            }
        }
        counters.retries.inc();
        // The next attempt's deadline comes from the agreed fault class:
        // crashes and repaired corruptions re-enter promptly under fixed
        // deadlines, transients back off (with deterministic jitter shared
        // by every rank).
        let class = if status == STATUS_DEAD {
            FaultClass::PeerDead
        } else if status == STATUS_CORRUPT {
            FaultClass::Corrupt
        } else {
            FaultClass::Transient
        };
        deadline = policy.deadline(class, attempts + 1, epoch);
        tl.event(
            EventKind::RecoveryAttempt,
            Some(epoch),
            &format!(
                "retry {} class={} deadline={}ms",
                attempts + 1,
                class.label(),
                deadline.as_millis()
            ),
        );
    }
}

/// Fault-tolerant [`ca_all_pairs_forces`](crate::allpairs::ca_all_pairs_forces):
/// identical result (bit-for-bit, even across recoveries), but the shift
/// pipeline detects failed peers by timeout and runs the recovery protocol
/// described in the module docs.
///
/// `epoch` must be unique per force evaluation on one execution (the
/// timestep index) — it namespaces message tags so traffic from an aborted
/// attempt can never satisfy a later evaluation's receive.
pub fn ca_all_pairs_forces_ft<C: Communicator, F: ForceLaw>(
    gc: &GridComms<C>,
    st: &mut Vec<Particle>,
    law: &F,
    domain: &Domain,
    boundary: Boundary,
    policy: &RetryPolicy,
    epoch: u64,
) -> Result<RecoveryReport, FaultError> {
    ca_all_pairs_forces_ft_health(gc, st, law, domain, boundary, policy, epoch, None)
        .map(|(report, _)| report)
}

/// [`ca_all_pairs_forces_ft`] with the numerical-health monitors threaded
/// through: when `health` is set, the kernel harvests the summed pair
/// potential (returned alongside the report — the rank's potential-energy
/// partial, counting each unordered pair twice globally) and every
/// recovery attempt starts with the replica fingerprint cross-check.
/// With `health = None` this *is* the plain ft driver: same kernel, no
/// harvesting, no cross-check traffic.
#[allow(clippy::too_many_arguments)]
pub fn ca_all_pairs_forces_ft_health<C: Communicator, F: ForceLaw>(
    gc: &GridComms<C>,
    st: &mut Vec<Particle>,
    law: &F,
    domain: &Domain,
    boundary: Boundary,
    policy: &RetryPolicy,
    epoch: u64,
    health: Option<&HealthMonitor>,
) -> Result<(RecoveryReport, f64), FaultError> {
    let teams = gc.grid.teams();
    let c = gc.grid.c();
    let steps = gc.grid.all_pairs_steps();
    let team = gc.team();
    let k = gc.row_index();
    debug_assert!(gc.is_leader() || st.is_empty());

    gc.col.set_phase(Phase::Broadcast);
    gc.col.bcast(0, st);
    // Owned block + exchange buffer + recovery checkpoint.
    gc.col
        .metrics()
        .gauge_max("mem_particles_hwm", (3 * st.len()) as u64);

    let tr = gc.col.tracer();
    // FLOP/byte accounting for the roofline audit; aborted attempts still
    // count — the work was really done.
    let meter = ComputeMeter::new(&gc.col.metrics(), law.flops_per_interaction());
    let harvest = health.is_some();
    let mut pe = 0.0f64;
    let report = recovery_loop(gc, st, policy, epoch, health, |st, tag_base, deadline| {
        // An aborted attempt's partial harvest must not double-count.
        pe = 0.0;
        let mut exch = st.clone();
        gc.col.set_phase(Phase::Skew);
        tr.set_step(Some(0));
        gc.col.fault_step(0)?;
        if k > 0 {
            let dst = (team + k) % teams;
            let src = (team + teams - k) % teams;
            gc.row.send(dst, TAG_SKEW + tag_base, &exch);
            exch = gc
                .row
                .try_recv_timeout(src, TAG_SKEW + tag_base, deadline)?;
        }
        for s in 1..=steps {
            gc.col.set_phase(Phase::Shift);
            tr.set_step(Some(s as u32));
            gc.col.fault_step(s)?;
            let dst = (team + c) % teams;
            let src = (team + teams - c) % teams;
            let tag = TAG_SHIFT + tag_base + s as u64;
            gc.row.send(dst, tag, &exch);
            exch = gc.row.try_recv_timeout(src, tag, deadline)?;

            gc.col.set_phase(Phase::Other);
            meter.time(st.len(), exch.len(), || {
                if harvest {
                    let (evals, dpe) =
                        accumulate_block_potential(st, &exch, law, domain, boundary);
                    pe += dpe;
                    evals
                } else {
                    accumulate_block(st, &exch, law, domain, boundary)
                }
            });
        }
        Ok(())
    })?;
    tr.set_step(None);

    gc.col.set_phase(Phase::Reduce);
    gc.col.reduce(0, st, combine_forces);
    Ok((report, pe))
}

/// Fault-tolerant [`ca_cutoff_forces`](crate::cutoff::ca_cutoff_forces):
/// the window-modulo pipeline with deadline-bounded receives and the
/// recovery protocol. See [`ca_all_pairs_forces_ft`] for the contract;
/// `epoch` uniqueness is per-execution, shared with the all-pairs driver.
///
/// Note that rows perform different step counts here
/// ([`row_steps`]), so a kill scheduled at step `s` only fires on ranks
/// whose row reaches that step.
#[allow(clippy::too_many_arguments)]
pub fn ca_cutoff_forces_ft<C: Communicator, W: Window, F: ForceLaw>(
    gc: &GridComms<C>,
    window: &W,
    st: &mut Vec<Particle>,
    law: &F,
    domain: &Domain,
    boundary: Boundary,
    policy: &RetryPolicy,
    epoch: u64,
) -> Result<RecoveryReport, FaultError> {
    ca_cutoff_forces_ft_health(gc, window, st, law, domain, boundary, policy, epoch, None)
        .map(|(report, _)| report)
}

/// [`ca_cutoff_forces_ft`] with the numerical-health monitors threaded
/// through; see [`ca_all_pairs_forces_ft_health`] for the contract. The
/// harvested potential covers exactly the in-window pairs the cutoff
/// schedule evaluates.
#[allow(clippy::too_many_arguments)]
pub fn ca_cutoff_forces_ft_health<C: Communicator, W: Window, F: ForceLaw>(
    gc: &GridComms<C>,
    window: &W,
    st: &mut Vec<Particle>,
    law: &F,
    domain: &Domain,
    boundary: Boundary,
    policy: &RetryPolicy,
    epoch: u64,
    health: Option<&HealthMonitor>,
) -> Result<(RecoveryReport, f64), FaultError> {
    assert_eq!(
        boundary == Boundary::Periodic,
        window.is_periodic(),
        "boundary and window periodicity must agree"
    );
    let teams = gc.grid.teams();
    let c = gc.grid.c();
    validate_cutoff(window, teams, c).expect("invalid cutoff configuration");
    let w = window.len();
    let t = gc.team();
    let k = gc.row_index();
    debug_assert!(gc.is_leader() || st.is_empty());

    gc.col.set_phase(Phase::Broadcast);
    gc.col.bcast(0, st);
    // Owned block + home copy + exchange buffer + recovery checkpoint.
    gc.col
        .metrics()
        .gauge_max("mem_particles_hwm", (4 * st.len()) as u64);

    let tr = gc.col.tracer();
    // FLOP/byte accounting for the roofline audit.
    let meter = ComputeMeter::new(&gc.col.metrics(), law.flops_per_interaction());
    let harvest = health.is_some();
    let mut pe = 0.0f64;
    let report = recovery_loop(gc, st, policy, epoch, health, |st, tag_base, deadline| {
        // An aborted attempt's partial harvest must not double-count.
        pe = 0.0;
        // The home copy is rebuilt from the checkpointed state each
        // attempt, so home-route re-injection stays consistent on retries.
        let home: Vec<Particle> = st.clone();
        let mut exch: Vec<Particle> = st.clone();
        let mut cur_block: Option<usize> = Some(t);

        gc.col.set_phase(Phase::Skew);
        tr.set_step(Some(0));
        gc.col.fault_step(0)?;
        if k > 0 {
            let tag = TAG_CSKEW + tag_base;
            if let Some(dst) = window.apply(t, k) {
                gc.row.send(dst, tag, &exch);
            }
            cur_block = window.apply_back(t, k);
            exch = match cur_block {
                Some(b) => gc.row.try_recv_timeout(b, tag, deadline)?,
                None => Vec::new(),
            };
        }

        let steps = row_steps(w, c, k);
        for s in 1..=steps {
            gc.col.set_phase(Phase::Shift);
            tr.set_step(Some(s as u32));
            gc.col.fault_step(s)?;
            let tag = TAG_CSHIFT + tag_base + s as u64;
            let j_prev = (k + (s - 1) * c) % w;
            let j_new = (k + s * c) % w;

            if let Some(b) = cur_block {
                if let Some(holder) = window.apply(b, j_new) {
                    gc.row.send(holder, tag, &exch);
                }
            }
            if let Some(needy) = window.apply(t, j_new) {
                if window.apply(t, j_prev).is_none() {
                    gc.row.send(needy, tag, &home);
                }
            }

            cur_block = window.apply_back(t, j_new);
            exch = match cur_block {
                Some(b) => {
                    let src = window.apply(b, j_prev).unwrap_or(b);
                    gc.row.try_recv_timeout(src, tag, deadline)?
                }
                None => Vec::new(),
            };

            if k + s * c < w + c && cur_block.is_some() {
                gc.col.set_phase(Phase::Other);
                meter.time(st.len(), exch.len(), || {
                    if harvest {
                        let (evals, dpe) =
                            accumulate_block_potential(st, &exch, law, domain, boundary);
                        pe += dpe;
                        evals
                    } else {
                        accumulate_block(st, &exch, law, domain, boundary)
                    }
                });
            }
        }
        Ok(())
    })?;
    tr.set_step(None);

    gc.col.set_phase(Phase::Reduce);
    gc.col.reduce(0, st, combine_forces);
    Ok((report, pe))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::id_block_subset;
    use crate::grid::ProcGrid;
    use nbody_comm::{run_ranks, run_ranks_chaos, FaultPlan};
    use nbody_physics::{init, RepulsiveInverseSquare};

    fn law() -> RepulsiveInverseSquare {
        RepulsiveInverseSquare {
            strength: 1e-3,
            softening: 1e-3,
        }
    }

    /// Fault-free ft run on a plain (strict-matching) transport: the ft
    /// driver must behave exactly like the plain driver.
    fn run_ft_plain(p: usize, c: usize, n: usize, seed: u64) -> Vec<Particle> {
        let domain = Domain::unit();
        let grid = ProcGrid::new_all_pairs(p, c).unwrap();
        let out = run_ranks(p, move |world| {
            let gc = GridComms::new(world, grid);
            let all = init::uniform(n, &domain, seed);
            let mut st = if gc.is_leader() {
                id_block_subset(&all, grid.teams(), gc.team())
            } else {
                Vec::new()
            };
            let rep = ca_all_pairs_forces_ft(
                &gc,
                &mut st,
                &law(),
                &domain,
                Boundary::Reflective,
                &RetryPolicy::default(),
                0,
            )
            .expect("fault-free run cannot fail");
            assert_eq!(
                rep,
                RecoveryReport {
                    attempts: 1,
                    recovered: false,
                    ..RecoveryReport::default()
                }
            );
            if gc.is_leader() {
                st
            } else {
                Vec::new()
            }
        });
        let mut got: Vec<Particle> = out.into_iter().flatten().collect();
        got.sort_by_key(|q| q.id);
        got
    }

    fn run_plain(p: usize, c: usize, n: usize, seed: u64) -> Vec<Particle> {
        let domain = Domain::unit();
        let grid = ProcGrid::new_all_pairs(p, c).unwrap();
        let out = run_ranks(p, move |world| {
            let gc = GridComms::new(world, grid);
            let all = init::uniform(n, &domain, seed);
            let mut st = if gc.is_leader() {
                id_block_subset(&all, grid.teams(), gc.team())
            } else {
                Vec::new()
            };
            crate::allpairs::ca_all_pairs_forces(
                &gc,
                &mut st,
                &law(),
                &domain,
                Boundary::Reflective,
            );
            if gc.is_leader() {
                st
            } else {
                Vec::new()
            }
        });
        let mut got: Vec<Particle> = out.into_iter().flatten().collect();
        got.sort_by_key(|q| q.id);
        got
    }

    #[test]
    fn ft_driver_matches_plain_driver_without_faults() {
        for (p, c) in [(4, 1), (8, 2), (9, 3)] {
            assert_eq!(
                run_ft_plain(p, c, 24, 7),
                run_plain(p, c, 24, 7),
                "p={p} c={c}"
            );
        }
    }

    #[test]
    fn kill_with_replication_recovers_bit_identically() {
        let want = run_plain(8, 2, 24, 3);
        let domain = Domain::unit();
        let grid = ProcGrid::new_all_pairs(8, 2).unwrap();
        // Kill rank 5 at shift step 1.
        let plan = FaultPlan::kill(5, 1);
        let out = run_ranks_chaos(8, &plan, move |world| {
            let gc = GridComms::new(world, grid);
            let all = init::uniform(24, &domain, 3);
            let mut st = if gc.is_leader() {
                id_block_subset(&all, grid.teams(), gc.team())
            } else {
                Vec::new()
            };
            let rep = ca_all_pairs_forces_ft(
                &gc,
                &mut st,
                &law(),
                &domain,
                Boundary::Reflective,
                &RetryPolicy::with_timeout_ms(500),
                0,
            )
            .expect("c=2 must recover from a single kill");
            assert!(rep.recovered);
            assert_eq!(rep.attempts, 2);
            if gc.is_leader() {
                st
            } else {
                Vec::new()
            }
        });
        let mut got: Vec<Particle> = out.into_iter().flatten().collect();
        got.sort_by_key(|q| q.id);
        assert_eq!(got, want, "recovered forces must be bit-identical");
    }

    /// A `c = 1` kill loses the column's only replica. The evaluation can
    /// no longer be completed as-configured, but every rank now returns
    /// the *agreed degraded verdict* — the same dead-team set everywhere —
    /// instead of giving up as unrecoverable.
    #[test]
    fn kill_without_replication_is_agreed_columns_lost() {
        let domain = Domain::unit();
        let grid = ProcGrid::new_all_pairs(4, 1).unwrap();
        let plan = FaultPlan::kill(2, 1);
        let errs = run_ranks_chaos(4, &plan, move |world| {
            let gc = GridComms::new(world, grid);
            let all = init::uniform(16, &domain, 5);
            let mut st = id_block_subset(&all, 4, gc.team());
            ca_all_pairs_forces_ft(
                &gc,
                &mut st,
                &law(),
                &domain,
                Boundary::Reflective,
                &RetryPolicy::with_timeout_ms(300),
                0,
            )
        });
        for err in errs {
            assert_eq!(
                err,
                Err(FaultError::ColumnsLost {
                    dead_teams: vec![2],
                    c: 1
                }),
                "every rank must agree on the dead-team set"
            );
        }
    }

    /// Deadlines derived from the policy are deterministic and follow the
    /// per-class schedule: transients back off, crashes stay fixed.
    #[test]
    fn retry_policy_deadlines_are_deterministic_and_classed() {
        let policy = RetryPolicy {
            base_timeout: Duration::from_millis(100),
            peer_dead_timeout: Duration::from_millis(250),
            backoff: 2.0,
            jitter: 0.1,
            max_retries: 5,
            budget: Duration::from_secs(60),
            seed: 7,
        };
        let d1 = policy.deadline(FaultClass::Transient, 1, 3);
        let d2 = policy.deadline(FaultClass::Transient, 2, 3);
        let d3 = policy.deadline(FaultClass::Transient, 3, 3);
        // Deterministic: the same inputs give the same deadline.
        assert_eq!(d1, policy.deadline(FaultClass::Transient, 1, 3));
        // Backoff dominates the 10% jitter band.
        assert!(d2 >= d1 && d3 > d2, "{d1:?} {d2:?} {d3:?}");
        assert!(d3 >= Duration::from_millis(400) && d3 < Duration::from_millis(440));
        // The crash class ignores the attempt number.
        let p1 = policy.deadline(FaultClass::PeerDead, 1, 3);
        let p4 = policy.deadline(FaultClass::PeerDead, 4, 3);
        assert!(p1 >= Duration::from_millis(250) && p1 <= Duration::from_millis(275));
        assert!(p4 >= Duration::from_millis(250) && p4 <= Duration::from_millis(275));
        // Jitter varies with the epoch but never the rank (no rank input).
        let other_epoch = policy.deadline(FaultClass::Transient, 2, 4);
        assert_ne!(d2, other_epoch);
    }

    /// An exhausted retry budget fails the evaluation like max_retries
    /// does, even when more retries would nominally be allowed.
    #[test]
    fn exhausted_budget_stops_retrying() {
        let domain = Domain::unit();
        let grid = ProcGrid::new_all_pairs(4, 2).unwrap();
        // Kill rank 1 on every attempt: revive + re-kill is impossible
        // with a one-shot plan, so instead exhaust the budget via a
        // zero-length budget and a transient-free crash retry loop.
        let plan = FaultPlan::kill(1, 1);
        let policy = RetryPolicy {
            budget: Duration::ZERO,
            ..RetryPolicy::with_timeout_ms(300)
        };
        let errs = run_ranks_chaos(4, &plan, move |world| {
            let gc = GridComms::new(world, grid);
            let all = init::uniform(16, &domain, 5);
            let mut st = if gc.is_leader() {
                id_block_subset(&all, grid.teams(), gc.team())
            } else {
                Vec::new()
            };
            ca_all_pairs_forces_ft(
                &gc,
                &mut st,
                &law(),
                &domain,
                Boundary::Reflective,
                &policy,
                0,
            )
        });
        for err in errs {
            assert_eq!(
                err,
                Err(FaultError::RetriesExhausted { attempts: 1 }),
                "a spent budget must stop the retry loop on every rank"
            );
        }
    }
}
