//! Fault-tolerant variants of the CA force drivers.
//!
//! The paper's algorithms assume a failure-free machine; at the scales its
//! model targets (Hopper: 153k cores), rank loss during a force evaluation
//! is a practical concern. The replication the algorithms already pay for
//! (`c` copies of every block, §IV.A) doubles as a recovery resource: as
//! long as one member of a team column survives, the lost rank's replicated
//! inputs can be reconstructed from a teammate and the evaluation re-run
//! from its checkpoint.
//!
//! The protocol wrapped around one force evaluation:
//!
//! 1. **Checkpoint.** After the team broadcast, every rank keeps an
//!    immutable copy of its post-broadcast input block (`nc/p` particles —
//!    the same replicated working set the paper's memory bound already
//!    charges for).
//! 2. **Attempt.** The skew/shift pipeline runs with deadline-bounded
//!    receives ([`Communicator::try_recv_timeout`]); a missing message
//!    surfaces as [`CommError::Timeout`] instead of a hang, and a rank the
//!    fault plan just killed observes [`CommError::PeerDead`] on itself.
//! 3. **Agreement.** Every rank reduces its local attempt status
//!    (`ok < transient < rank-dead`) with a column-then-row max-allreduce,
//!    so all `p` ranks agree on the worst outcome. A killed rank still
//!    participates here — it models the *replacement* process that the
//!    runtime would respawn in its slot.
//! 4. **Resync + retry.** On a dead rank, survivors of its column re-send
//!    the checkpoint with a team broadcast (valid whenever `c ≥ 2`); on a
//!    transient fault the checkpoint is already local. Every rank restores
//!    its checkpoint and re-enters the attempt under a fresh tag namespace,
//!    bounded by [`FaultConfig::max_retries`].
//!
//! With `c = 1` there is no surviving replica: a kill is a documented
//! [`FaultError::Unrecoverable`] returned by *every* rank within a bounded
//! number of timeouts — a clean, agreed shutdown rather than a deadlock.
//!
//! Because a retry restores the exact post-broadcast state and the
//! accumulation order is unchanged, recovered evaluations are
//! **bit-identical** to fault-free ones. Recovery traffic is attributed to
//! [`Phase::Recovery`] (excluded from the paper's cost model, priced
//! separately by `audit`) and counted in the `fault_*` /
//! `recovery_bytes_total` metrics.

use std::time::Duration;

use nbody_comm::{CommError, Communicator, EventKind, Phase};
use nbody_metrics::Counter;
use nbody_physics::{Boundary, Domain, ForceLaw, Particle};

use crate::allpairs::{TAG_SHIFT, TAG_SKEW};
use crate::cutoff::{row_steps, validate_cutoff, TAG_CSHIFT, TAG_CSKEW};
use crate::grid::GridComms;
use crate::kernel::{accumulate_block, combine_forces, ComputeMeter};
use crate::window::Window;

/// Tag distance between retry attempts of one evaluation. Attempt `a` of
/// evaluation epoch `e` offsets every pipeline tag by
/// `e * EPOCH_TAG_STRIDE + a * ATTEMPT_TAG_STRIDE`, so a message a dead
/// attempt left in flight can never satisfy a later attempt's receive
/// (receives under chaos match on exact tags).
pub const ATTEMPT_TAG_STRIDE: u64 = 1 << 16;
/// Tag distance between force evaluations (timesteps). Keeps stale traffic
/// from an aborted attempt in step `t` from matching step `t + 1`'s tags.
pub const EPOCH_TAG_STRIDE: u64 = 1 << 20;

const STATUS_OK: u8 = 0;
const STATUS_TRANSIENT: u8 = 1;
const STATUS_DEAD: u8 = 2;

/// Tuning knobs of the recovery protocol.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Deadline for each pipeline receive; a peer silent for this long is
    /// presumed failed. Bounds detection latency: a fault cascades through
    /// at most `O(steps)` timeouts before the agreement round sees it.
    pub recv_timeout: Duration,
    /// Retries after the initial attempt before giving up with
    /// [`FaultError::RetriesExhausted`].
    pub max_retries: usize,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            recv_timeout: Duration::from_secs(1),
            max_retries: 3,
        }
    }
}

impl FaultConfig {
    /// A config with the given receive deadline in milliseconds.
    pub fn with_timeout_ms(ms: u64) -> Self {
        FaultConfig {
            recv_timeout: Duration::from_millis(ms),
            ..Default::default()
        }
    }
}

/// Terminal failures of a fault-tolerant evaluation. Every rank returns the
/// same variant (the decision is taken on globally agreed state), so the
/// caller can shut the execution down cleanly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultError {
    /// A rank died and no replica of its inputs survives (`c = 1`, or an
    /// entire team column was lost). The evaluation cannot be completed.
    Unrecoverable {
        /// World rank reporting the failure.
        rank: usize,
        /// Replication factor in effect.
        c: usize,
    },
    /// Faults kept recurring past [`FaultConfig::max_retries`].
    RetriesExhausted {
        /// Attempts performed (initial + retries).
        attempts: usize,
    },
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::Unrecoverable { rank, c } => write!(
                f,
                "rank {rank}: lost inputs are unrecoverable at replication c={c} \
                 (recovery needs a surviving replica, c >= 2)"
            ),
            FaultError::RetriesExhausted { attempts } => {
                write!(f, "faults persisted through {attempts} attempts; giving up")
            }
        }
    }
}

impl std::error::Error for FaultError {}

/// What it took to complete a fault-tolerant evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Attempts performed (1 = clean, fault-free run).
    pub attempts: usize,
    /// Whether any fault was detected (and survived).
    pub recovered: bool,
}

/// Per-rank fault/recovery counters, registered against the live metrics
/// recorder so `report`/`audit` can price recovery overhead.
struct FaultCounters {
    detected: Counter,
    recovered: Counter,
    retries: Counter,
    resync_bytes: Counter,
}

impl FaultCounters {
    fn new<C: Communicator>(comm: &C) -> Self {
        let rec = comm.metrics();
        FaultCounters {
            detected: rec.counter("fault_detected_total", None),
            recovered: rec.counter("fault_recovered_total", None),
            retries: rec.counter("fault_retries_total", None),
            resync_bytes: rec.counter("recovery_bytes_total", None),
        }
    }
}

fn max_combine(acc: &mut u8, x: &u8) {
    if *x > *acc {
        *acc = *x;
    }
}

/// Column-then-row max-allreduce: every rank is in exactly one column and
/// one row, and every row spans all columns, so the second reduce leaves
/// the global maximum on all `p` ranks.
fn agree<C: Communicator>(gc: &GridComms<C>, local: u8) -> u8 {
    let mut buf = vec![local];
    gc.col.allreduce(&mut buf, max_combine);
    gc.row.allreduce(&mut buf, max_combine);
    buf[0]
}

/// The retry/agreement/resync loop shared by both fault-tolerant drivers.
///
/// `st` must hold the post-broadcast input block; `attempt` runs one
/// fallible pipeline pass over `st` under the given tag offset. On success
/// `st` holds the accumulated partial forces and the caller performs the
/// final reduction.
fn recovery_loop<C: Communicator>(
    gc: &GridComms<C>,
    st: &mut Vec<Particle>,
    fc: &FaultConfig,
    epoch: u64,
    mut attempt: impl FnMut(&mut Vec<Particle>, u64) -> Result<(), CommError>,
) -> Result<RecoveryReport, FaultError> {
    let c = gc.grid.c();
    let world_rank = gc.grid.rank_at(gc.team(), gc.row_index());
    let counters = FaultCounters::new(&gc.col);
    // The flight recorder: structured events land in the rank's bounded
    // ring so a postmortem bundle shows what recovery was doing when (and
    // if) the run degraded. Every recorded event carries `epoch` (the
    // timestep) as its step coordinate.
    let tl = gc.col.timeline();
    // The checkpoint: the replicated post-broadcast input. A transient
    // retry restores it locally; a dead rank gets it back from a teammate.
    let mut input = st.clone();
    tl.event(
        EventKind::Checkpoint,
        Some(epoch),
        &format!("{} particles", input.len()),
    );
    let mut attempts = 0usize;
    let mut had_fault = false;
    loop {
        attempts += 1;
        st.clone_from(&input);
        let tag_base =
            epoch * EPOCH_TAG_STRIDE + (attempts as u64 - 1) * ATTEMPT_TAG_STRIDE;
        let outcome = attempt(st, tag_base);
        let local = match outcome {
            Ok(()) => STATUS_OK,
            Err(CommError::PeerDead { .. }) => STATUS_DEAD,
            Err(_) => STATUS_TRANSIENT,
        };
        let self_dead = local == STATUS_DEAD;
        if local != STATUS_OK {
            counters.detected.inc();
            tl.event(
                EventKind::RecoveryAttempt,
                Some(epoch),
                &format!(
                    "attempt {attempts} failed locally: {}",
                    if self_dead { "rank dead" } else { "transient" }
                ),
            );
        }
        if self_dead {
            // The crash loses everything the rank held in memory; the
            // replacement process starts blank.
            st.clear();
            input.clear();
        }
        gc.col.set_phase(Phase::Recovery);
        let status = agree(gc, local);
        if status == STATUS_OK {
            if had_fault {
                counters.recovered.inc();
            }
            return Ok(RecoveryReport {
                attempts,
                recovered: had_fault,
            });
        }
        had_fault = true;
        if status == STATUS_DEAD && c < 2 {
            let err = FaultError::Unrecoverable {
                rank: world_rank,
                c,
            };
            tl.event(EventKind::Unrecoverable, Some(epoch), &err.to_string());
            tl.mark_failure(&err.to_string());
            return Err(err);
        }
        if attempts > fc.max_retries {
            let err = FaultError::RetriesExhausted { attempts };
            tl.event(EventKind::RetryExhausted, Some(epoch), &err.to_string());
            tl.mark_failure(&err.to_string());
            return Err(err);
        }
        // The replacement process comes back up for the retry.
        gc.col.fault_revive();
        if status == STATUS_DEAD {
            // Re-seed dead ranks from the lowest surviving row of their
            // column. The flags are identical on all members of a column,
            // so every member picks the same broadcast root.
            let flags = gc.col.allgather(&[u8::from(self_dead)]);
            let src_row = flags.iter().position(|f| f[0] == 0);
            let column_lost = u8::from(src_row.is_none());
            if agree(gc, column_lost) != 0 {
                // Some column lost every replica — globally unrecoverable.
                let err = FaultError::Unrecoverable {
                    rank: world_rank,
                    c,
                };
                tl.event(EventKind::Unrecoverable, Some(epoch), &err.to_string());
                tl.mark_failure(&err.to_string());
                return Err(err);
            }
            let src_row = src_row.expect("agreed recoverable, so a survivor exists");
            gc.col.bcast(src_row, &mut input);
            tl.event(
                EventKind::Resync,
                Some(epoch),
                &format!("checkpoint re-seeded from row {src_row}"),
            );
            if self_dead {
                counters
                    .resync_bytes
                    .add((input.len() * std::mem::size_of::<Particle>()) as u64);
            }
        }
        counters.retries.inc();
    }
}

/// Fault-tolerant [`ca_all_pairs_forces`](crate::allpairs::ca_all_pairs_forces):
/// identical result (bit-for-bit, even across recoveries), but the shift
/// pipeline detects failed peers by timeout and runs the recovery protocol
/// described in the module docs.
///
/// `epoch` must be unique per force evaluation on one execution (the
/// timestep index) — it namespaces message tags so traffic from an aborted
/// attempt can never satisfy a later evaluation's receive.
pub fn ca_all_pairs_forces_ft<C: Communicator, F: ForceLaw>(
    gc: &GridComms<C>,
    st: &mut Vec<Particle>,
    law: &F,
    domain: &Domain,
    boundary: Boundary,
    fc: &FaultConfig,
    epoch: u64,
) -> Result<RecoveryReport, FaultError> {
    let teams = gc.grid.teams();
    let c = gc.grid.c();
    let steps = gc.grid.all_pairs_steps();
    let team = gc.team();
    let k = gc.row_index();
    debug_assert!(gc.is_leader() || st.is_empty());

    gc.col.set_phase(Phase::Broadcast);
    gc.col.bcast(0, st);
    // Owned block + exchange buffer + recovery checkpoint.
    gc.col
        .metrics()
        .gauge_max("mem_particles_hwm", (3 * st.len()) as u64);

    let tr = gc.col.tracer();
    // FLOP/byte accounting for the roofline audit; aborted attempts still
    // count — the work was really done.
    let meter = ComputeMeter::new(&gc.col.metrics(), law.flops_per_interaction());
    let report = recovery_loop(gc, st, fc, epoch, |st, tag_base| {
        let mut exch = st.clone();
        gc.col.set_phase(Phase::Skew);
        tr.set_step(Some(0));
        gc.col.fault_step(0)?;
        if k > 0 {
            let dst = (team + k) % teams;
            let src = (team + teams - k) % teams;
            gc.row.send(dst, TAG_SKEW + tag_base, &exch);
            exch = gc
                .row
                .try_recv_timeout(src, TAG_SKEW + tag_base, fc.recv_timeout)?;
        }
        for s in 1..=steps {
            gc.col.set_phase(Phase::Shift);
            tr.set_step(Some(s as u32));
            gc.col.fault_step(s)?;
            let dst = (team + c) % teams;
            let src = (team + teams - c) % teams;
            let tag = TAG_SHIFT + tag_base + s as u64;
            gc.row.send(dst, tag, &exch);
            exch = gc.row.try_recv_timeout(src, tag, fc.recv_timeout)?;

            gc.col.set_phase(Phase::Other);
            meter.time(st.len(), exch.len(), || {
                accumulate_block(st, &exch, law, domain, boundary)
            });
        }
        Ok(())
    })?;
    tr.set_step(None);

    gc.col.set_phase(Phase::Reduce);
    gc.col.reduce(0, st, combine_forces);
    Ok(report)
}

/// Fault-tolerant [`ca_cutoff_forces`](crate::cutoff::ca_cutoff_forces):
/// the window-modulo pipeline with deadline-bounded receives and the
/// recovery protocol. See [`ca_all_pairs_forces_ft`] for the contract;
/// `epoch` uniqueness is per-execution, shared with the all-pairs driver.
///
/// Note that rows perform different step counts here
/// ([`row_steps`]), so a kill scheduled at step `s` only fires on ranks
/// whose row reaches that step.
#[allow(clippy::too_many_arguments)]
pub fn ca_cutoff_forces_ft<C: Communicator, W: Window, F: ForceLaw>(
    gc: &GridComms<C>,
    window: &W,
    st: &mut Vec<Particle>,
    law: &F,
    domain: &Domain,
    boundary: Boundary,
    fc: &FaultConfig,
    epoch: u64,
) -> Result<RecoveryReport, FaultError> {
    assert_eq!(
        boundary == Boundary::Periodic,
        window.is_periodic(),
        "boundary and window periodicity must agree"
    );
    let teams = gc.grid.teams();
    let c = gc.grid.c();
    validate_cutoff(window, teams, c).expect("invalid cutoff configuration");
    let w = window.len();
    let t = gc.team();
    let k = gc.row_index();
    debug_assert!(gc.is_leader() || st.is_empty());

    gc.col.set_phase(Phase::Broadcast);
    gc.col.bcast(0, st);
    // Owned block + home copy + exchange buffer + recovery checkpoint.
    gc.col
        .metrics()
        .gauge_max("mem_particles_hwm", (4 * st.len()) as u64);

    let tr = gc.col.tracer();
    // FLOP/byte accounting for the roofline audit.
    let meter = ComputeMeter::new(&gc.col.metrics(), law.flops_per_interaction());
    let report = recovery_loop(gc, st, fc, epoch, |st, tag_base| {
        // The home copy is rebuilt from the checkpointed state each
        // attempt, so home-route re-injection stays consistent on retries.
        let home: Vec<Particle> = st.clone();
        let mut exch: Vec<Particle> = st.clone();
        let mut cur_block: Option<usize> = Some(t);

        gc.col.set_phase(Phase::Skew);
        tr.set_step(Some(0));
        gc.col.fault_step(0)?;
        if k > 0 {
            let tag = TAG_CSKEW + tag_base;
            if let Some(dst) = window.apply(t, k) {
                gc.row.send(dst, tag, &exch);
            }
            cur_block = window.apply_back(t, k);
            exch = match cur_block {
                Some(b) => gc.row.try_recv_timeout(b, tag, fc.recv_timeout)?,
                None => Vec::new(),
            };
        }

        let steps = row_steps(w, c, k);
        for s in 1..=steps {
            gc.col.set_phase(Phase::Shift);
            tr.set_step(Some(s as u32));
            gc.col.fault_step(s)?;
            let tag = TAG_CSHIFT + tag_base + s as u64;
            let j_prev = (k + (s - 1) * c) % w;
            let j_new = (k + s * c) % w;

            if let Some(b) = cur_block {
                if let Some(holder) = window.apply(b, j_new) {
                    gc.row.send(holder, tag, &exch);
                }
            }
            if let Some(needy) = window.apply(t, j_new) {
                if window.apply(t, j_prev).is_none() {
                    gc.row.send(needy, tag, &home);
                }
            }

            cur_block = window.apply_back(t, j_new);
            exch = match cur_block {
                Some(b) => {
                    let src = window.apply(b, j_prev).unwrap_or(b);
                    gc.row.try_recv_timeout(src, tag, fc.recv_timeout)?
                }
                None => Vec::new(),
            };

            if k + s * c < w + c && cur_block.is_some() {
                gc.col.set_phase(Phase::Other);
                meter.time(st.len(), exch.len(), || {
                    accumulate_block(st, &exch, law, domain, boundary)
                });
            }
        }
        Ok(())
    })?;
    tr.set_step(None);

    gc.col.set_phase(Phase::Reduce);
    gc.col.reduce(0, st, combine_forces);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::id_block_subset;
    use crate::grid::ProcGrid;
    use nbody_comm::{run_ranks, run_ranks_chaos, FaultPlan};
    use nbody_physics::{init, RepulsiveInverseSquare};

    fn law() -> RepulsiveInverseSquare {
        RepulsiveInverseSquare {
            strength: 1e-3,
            softening: 1e-3,
        }
    }

    /// Fault-free ft run on a plain (strict-matching) transport: the ft
    /// driver must behave exactly like the plain driver.
    fn run_ft_plain(p: usize, c: usize, n: usize, seed: u64) -> Vec<Particle> {
        let domain = Domain::unit();
        let grid = ProcGrid::new_all_pairs(p, c).unwrap();
        let out = run_ranks(p, move |world| {
            let gc = GridComms::new(world, grid);
            let all = init::uniform(n, &domain, seed);
            let mut st = if gc.is_leader() {
                id_block_subset(&all, grid.teams(), gc.team())
            } else {
                Vec::new()
            };
            let rep = ca_all_pairs_forces_ft(
                &gc,
                &mut st,
                &law(),
                &domain,
                Boundary::Reflective,
                &FaultConfig::default(),
                0,
            )
            .expect("fault-free run cannot fail");
            assert_eq!(rep, RecoveryReport { attempts: 1, recovered: false });
            if gc.is_leader() {
                st
            } else {
                Vec::new()
            }
        });
        let mut got: Vec<Particle> = out.into_iter().flatten().collect();
        got.sort_by_key(|q| q.id);
        got
    }

    fn run_plain(p: usize, c: usize, n: usize, seed: u64) -> Vec<Particle> {
        let domain = Domain::unit();
        let grid = ProcGrid::new_all_pairs(p, c).unwrap();
        let out = run_ranks(p, move |world| {
            let gc = GridComms::new(world, grid);
            let all = init::uniform(n, &domain, seed);
            let mut st = if gc.is_leader() {
                id_block_subset(&all, grid.teams(), gc.team())
            } else {
                Vec::new()
            };
            crate::allpairs::ca_all_pairs_forces(
                &gc,
                &mut st,
                &law(),
                &domain,
                Boundary::Reflective,
            );
            if gc.is_leader() {
                st
            } else {
                Vec::new()
            }
        });
        let mut got: Vec<Particle> = out.into_iter().flatten().collect();
        got.sort_by_key(|q| q.id);
        got
    }

    #[test]
    fn ft_driver_matches_plain_driver_without_faults() {
        for (p, c) in [(4, 1), (8, 2), (9, 3)] {
            assert_eq!(
                run_ft_plain(p, c, 24, 7),
                run_plain(p, c, 24, 7),
                "p={p} c={c}"
            );
        }
    }

    #[test]
    fn kill_with_replication_recovers_bit_identically() {
        let want = run_plain(8, 2, 24, 3);
        let domain = Domain::unit();
        let grid = ProcGrid::new_all_pairs(8, 2).unwrap();
        // Kill rank 5 at shift step 1.
        let plan = FaultPlan::kill(5, 1);
        let out = run_ranks_chaos(8, &plan, move |world| {
            let gc = GridComms::new(world, grid);
            let all = init::uniform(24, &domain, 3);
            let mut st = if gc.is_leader() {
                id_block_subset(&all, grid.teams(), gc.team())
            } else {
                Vec::new()
            };
            let rep = ca_all_pairs_forces_ft(
                &gc,
                &mut st,
                &law(),
                &domain,
                Boundary::Reflective,
                &FaultConfig::with_timeout_ms(500),
                0,
            )
            .expect("c=2 must recover from a single kill");
            assert!(rep.recovered);
            assert_eq!(rep.attempts, 2);
            if gc.is_leader() {
                st
            } else {
                Vec::new()
            }
        });
        let mut got: Vec<Particle> = out.into_iter().flatten().collect();
        got.sort_by_key(|q| q.id);
        assert_eq!(got, want, "recovered forces must be bit-identical");
    }

    #[test]
    fn kill_without_replication_is_agreed_unrecoverable() {
        let domain = Domain::unit();
        let grid = ProcGrid::new_all_pairs(4, 1).unwrap();
        let plan = FaultPlan::kill(2, 1);
        let errs = run_ranks_chaos(4, &plan, move |world| {
            let gc = GridComms::new(world, grid);
            let all = init::uniform(16, &domain, 5);
            let mut st = id_block_subset(&all, 4, gc.team());
            ca_all_pairs_forces_ft(
                &gc,
                &mut st,
                &law(),
                &domain,
                Boundary::Reflective,
                &FaultConfig::with_timeout_ms(300),
                0,
            )
        });
        for (rank, err) in errs.into_iter().enumerate() {
            assert_eq!(
                err,
                Err(FaultError::Unrecoverable { rank, c: 1 }),
                "every rank must agree on Unrecoverable"
            );
        }
    }
}
