//! Algorithm 2 and its multi-dimensional generalization: the
//! communication-avoiding algorithm for distance-limited interactions.
//!
//! ```text
//! S' = CA-1D-N-BODY(S, rc, c)
//!   2 Broadcast St from team leader to team members.
//!   3 Copy St to exchange buffer St' of size nc/p.
//!   4 Given a k-th-row processor, shift St' by k along row modulo the
//!     cutoff window.
//!   5 for 2m/c steps do
//!   6   Shift St' by c along row modulo the cutoff window.
//!   7   Update particles in St based on effect of St'.
//!   8 end for
//!   9 Sum-reduce updates within team.
//! ```
//!
//! Teams own *spatial* regions; a [`Window`] enumerates the `W` block
//! offsets a team interacts with (`W = 2m+1` in 1D). Exchange buffers walk
//! through window *positions*: after the skew plus `s` shifts, the row-`k`
//! processor of team `t` holds the block at position `(k + s·c) mod W`,
//! i.e. block `t − O[(k+s·c) mod W]`. Every position is updated exactly
//! once: at step `s`, row `k` computes iff `k + s·c < W + c` (the
//! first-wrap rule), which partitions positions across `(k, s)`.
//!
//! **Shifting modulo the window.** Between consecutive positions the buffer
//! usually moves `c` teams east — a point-to-point shift exactly as in the
//! all-pairs algorithm. When the traversal wraps from the `+m` end of the
//! window to the `−m` end, the buffer instead jumps `W − c` teams west
//! (Fig. 4's "wrap around at the cutoff radius"). Because the simulation
//! space is not periodic, a buffer's path can leave the team grid at the
//! domain boundary; exchange buffers are immutable during the force phase,
//! so the block's *home team* re-injects the copy on the other side
//! (`home-route` sends below). Boundary teams therefore hold empty buffers
//! in some steps and idle — the load imbalance the paper reports in §IV.D.

use nbody_comm::{Communicator, Phase};
use nbody_physics::{Boundary, Domain, ForceLaw, Particle};

use crate::grid::GridComms;
use crate::kernel::{accumulate_block, combine_forces, ComputeMeter};
use crate::window::Window;

/// Tag for the skew message (line 4).
pub const TAG_CSKEW: u64 = 0x30;
/// Base tag for cutoff shift step `s` (line 6).
pub const TAG_CSHIFT: u64 = 0x2000;

/// Errors from invalid cutoff configurations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CutoffError {
    /// The replication factor must fit inside the interaction window
    /// (the paper's practicality constraint `c ≤ 2m`; here `c ≤ W = 2m+1`).
    ReplicationExceedsWindow {
        /// Replication factor.
        c: usize,
        /// Window size `W`.
        window: usize,
    },
    /// Grid team count and window team count disagree.
    TeamMismatch {
        /// Teams in the processor grid.
        grid_teams: usize,
        /// Teams the window was built for.
        window_teams: usize,
    },
}

impl std::fmt::Display for CutoffError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CutoffError::ReplicationExceedsWindow { c, window } => write!(
                f,
                "replication factor c={c} must fit inside the cutoff window (W={window}); \
                 the paper requires c <= 2m"
            ),
            CutoffError::TeamMismatch {
                grid_teams,
                window_teams,
            } => write!(
                f,
                "grid has {grid_teams} teams but the window was built for {window_teams}"
            ),
        }
    }
}

impl std::error::Error for CutoffError {}

/// Check that `window` is usable with a grid of `teams` teams and
/// replication `c`.
pub fn validate_cutoff<W: Window>(window: &W, teams: usize, c: usize) -> Result<(), CutoffError> {
    if window.teams() != teams {
        return Err(CutoffError::TeamMismatch {
            grid_teams: teams,
            window_teams: window.teams(),
        });
    }
    if c > window.len() {
        return Err(CutoffError::ReplicationExceedsWindow {
            c,
            window: window.len(),
        });
    }
    Ok(())
}

/// Number of shift steps row `k` performs: the largest `s` with
/// `k + s·c < W + c` (so `O(W/c) = O(2m/c)`, the paper's step count).
pub fn row_steps(window_len: usize, c: usize, k: usize) -> usize {
    debug_assert!(k < c);
    (window_len + c - k - 1) / c
}

/// One force evaluation of the CA cutoff algorithm (Algorithm 2 when the
/// window is [`Window1d`](crate::window::Window1d); its Fig. 5
/// generalization when it is [`Window2d`](crate::window::Window2d)).
///
/// On entry, each team leader's `st` holds the particles of its *spatial*
/// region with force accumulators cleared (empty on non-leaders). On exit
/// the leader's `st` carries the accumulated forces from every particle
/// within the window; non-leader contents are unspecified.
pub fn ca_cutoff_forces<C: Communicator, W: Window, F: ForceLaw>(
    gc: &GridComms<C>,
    window: &W,
    st: &mut Vec<Particle>,
    law: &F,
    domain: &Domain,
    boundary: Boundary,
) {
    assert_eq!(
        boundary == Boundary::Periodic,
        window.is_periodic(),
        "boundary and window periodicity must agree: clipped windows model \
         the paper's non-periodic domain; periodic boundaries need the \
         wrap-around windows from `window_periodic`"
    );
    let teams = gc.grid.teams();
    let c = gc.grid.c();
    validate_cutoff(window, teams, c).expect("invalid cutoff configuration");
    let w = window.len();
    let t = gc.team();
    let k = gc.row_index();
    debug_assert!(gc.is_leader() || st.is_empty());

    // Line 2: broadcast the team subset down the column.
    gc.col.set_phase(Phase::Broadcast);
    gc.col.bcast(0, st);

    // Line 3: the exchange buffer. `home` is the immutable copy used to
    // re-inject this team's block when a traversal wraps across the domain
    // boundary.
    let home: Vec<Particle> = st.clone();
    let mut exch: Vec<Particle> = st.clone();
    // Replicated working set (owned block + home copy + exchange buffer):
    // the memory the Eq. 3 bounds are evaluated against.
    gc.col
        .metrics()
        .gauge_max("mem_particles_hwm", (st.len() + home.len() + exch.len()) as u64);
    // Window position and block currently held (None = fell off the edge).
    let mut cur_block: Option<usize> = Some(t);

    // Pipeline-step tagging (0 = skew, s = shift step s) for blocked-wait
    // attribution in the trace.
    let tr = gc.col.tracer();
    // FLOP/byte accounting for the roofline audit.
    let meter = ComputeMeter::new(&gc.col.metrics(), law.flops_per_interaction());

    // Line 4: skew to position k. Own blocks move directly from their homes.
    gc.col.set_phase(Phase::Skew);
    tr.set_step(Some(0));
    if k > 0 {
        if let Some(dst) = window.apply(t, k) {
            gc.row.send(dst, TAG_CSKEW, &exch);
        }
        cur_block = window.apply_back(t, k);
        exch = match cur_block {
            Some(b) => gc.row.recv(b, TAG_CSKEW),
            None => Vec::new(),
        };
    }

    // Lines 5-8: shift modulo the window, then update. Row k stops after
    // its last first-wrap position (row_steps), giving O(W/c) steps.
    let steps = row_steps(w, c, k);
    for s in 1..=steps {
        gc.col.set_phase(Phase::Shift);
        tr.set_step(Some(s as u32));
        let tag = TAG_CSHIFT + s as u64;
        let j_prev = (k + (s - 1) * c) % w;
        let j_new = (k + s * c) % w;

        // Outgoing regular shift: my buffer's block moves to the processor
        // holding position j_new for it — but only while the *receiving*
        // row is still active (same row k, same step bound, so if I run
        // this step, so does it).
        if let Some(b) = cur_block {
            if let Some(holder) = window.apply(b, j_new) {
                gc.row.send(holder, tag, &exch);
            }
        }
        // Outgoing home-route: if the processor that needs *my team's*
        // block next has no valid regular source (the buffer's path left
        // the grid), its home — me — re-injects the copy.
        if let Some(needy) = window.apply(t, j_new) {
            if window.apply(t, j_prev).is_none() {
                gc.row.send(needy, tag, &home);
            }
        }

        // Incoming: the block at my new position, from its regular holder
        // or from its home team.
        cur_block = window.apply_back(t, j_new);
        exch = match cur_block {
            Some(b) => {
                let src = window.apply(b, j_prev).unwrap_or(b);
                gc.row.recv(src, tag)
            }
            None => Vec::new(),
        };

        // Line 7: update, once per window position (first-wrap rule).
        if k + s * c < w + c && cur_block.is_some() {
            gc.col.set_phase(Phase::Other);
            meter.time(st.len(), exch.len(), || {
                accumulate_block(st, &exch, law, domain, boundary)
            });
        }
    }
    tr.set_step(None);

    // Line 9: sum-reduce the partial forces onto the leader.
    gc.col.set_phase(Phase::Reduce);
    gc.col.reduce(0, st, combine_forces);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{spatial_subset_1d, spatial_subset_2d, team_grid_dims};
    use crate::grid::ProcGrid;
    use crate::window::{Window1d, Window2d};
    use nbody_comm::run_ranks;
    use nbody_physics::{init, reference, Counting, Cutoff, Particle, RepulsiveInverseSquare};

    fn serial_cutoff(n: usize, seed: u64, r_c: f64, one_d: bool) -> Vec<Particle> {
        let domain = Domain::unit();
        let law = Cutoff::new(Counting, r_c);
        let mut all = if one_d {
            init::uniform_1d(n, &domain, seed)
        } else {
            init::uniform(n, &domain, seed)
        };
        reference::accumulate_forces(&mut all, &law, &domain, Boundary::Open);
        all
    }

    fn run_1d(p: usize, c: usize, n: usize, seed: u64, r_c: f64) -> Vec<Particle> {
        let domain = Domain::unit();
        let grid = ProcGrid::new(p, c).unwrap();
        let window = Window1d::from_cutoff(&domain, grid.teams(), r_c);
        let law = Cutoff::new(Counting, r_c);
        let out = run_ranks(p, |world| {
            let gc = GridComms::new(world, grid);
            let all = init::uniform_1d(n, &domain, seed);
            let mut st = if gc.is_leader() {
                spatial_subset_1d(&all, &domain, grid.teams(), gc.team())
            } else {
                Vec::new()
            };
            ca_cutoff_forces(&gc, &window, &mut st, &law, &domain, Boundary::Open);
            if gc.is_leader() {
                st
            } else {
                Vec::new()
            }
        });
        let mut flat: Vec<Particle> = out.into_iter().flatten().collect();
        flat.sort_by_key(|p| p.id);
        flat
    }

    #[test]
    fn cutoff_1d_counting_matches_serial() {
        let n = 60;
        let r_c = 0.15;
        let want = serial_cutoff(n, 21, r_c, true);
        // Valid (p, c): the window must satisfy c <= W (teams shrink as c
        // grows, and with them m and W).
        for (p, c) in [(4, 1), (4, 2), (8, 2), (12, 3), (16, 2)] {
            let got = run_1d(p, c, n, 21, r_c);
            assert_eq!(got.len(), n, "p={p} c={c}");
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.id, w.id);
                assert_eq!(
                    g.force.x, w.force.x,
                    "p={p} c={c} id={} got {} want {}",
                    g.id, g.force.x, w.force.x
                );
            }
        }
    }

    #[test]
    fn cutoff_1d_various_radii() {
        // r_c = 1/4 of the domain, the paper's choice (§IV.D), plus extremes.
        let n = 48;
        for r_c in [0.05, 0.25, 0.6] {
            let want = serial_cutoff(n, 5, r_c, true);
            let got = run_1d(8, 2, n, 5, r_c);
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.force.x, w.force.x, "r_c={r_c} id={}", g.id);
            }
        }
    }

    #[test]
    fn cutoff_1d_physical_force_matches_serial() {
        let domain = Domain::unit();
        let n = 40;
        let r_c = 0.2;
        let law = Cutoff::new(RepulsiveInverseSquare::default(), r_c);
        let mut want = init::uniform_1d(n, &domain, 9);
        reference::accumulate_forces(&mut want, &law, &domain, Boundary::Open);

        let grid = ProcGrid::new(8, 2).unwrap();
        let window = Window1d::from_cutoff(&domain, grid.teams(), r_c);
        let out = run_ranks(8, |world| {
            let gc = GridComms::new(world, grid);
            let all = init::uniform_1d(n, &domain, 9);
            let mut st = if gc.is_leader() {
                spatial_subset_1d(&all, &domain, grid.teams(), gc.team())
            } else {
                Vec::new()
            };
            ca_cutoff_forces(&gc, &window, &mut st, &law, &domain, Boundary::Open);
            if gc.is_leader() {
                st
            } else {
                Vec::new()
            }
        });
        let mut got: Vec<Particle> = out.into_iter().flatten().collect();
        got.sort_by_key(|p| p.id);
        for (g, w) in got.iter().zip(&want) {
            let err = (g.force - w.force).norm();
            assert!(err <= 1e-12 * w.force.norm().max(1e-30), "id={}", g.id);
        }
    }

    #[test]
    fn cutoff_2d_counting_matches_serial() {
        let domain = Domain::unit();
        let n = 80;
        let r_c = 0.3;
        let want = serial_cutoff(n, 13, r_c, false);
        for (p, c) in [(4, 1), (8, 2), (16, 4), (12, 2)] {
            let grid = ProcGrid::new(p, c).unwrap();
            let (tx, ty) = team_grid_dims(grid.teams());
            let window = Window2d::from_cutoff(&domain, tx, ty, r_c);
            let law = Cutoff::new(Counting, r_c);
            let out = run_ranks(p, |world| {
                let gc = GridComms::new(world, grid);
                let all = init::uniform(n, &domain, 13);
                let mut st = if gc.is_leader() {
                    spatial_subset_2d(&all, &domain, tx, ty, gc.team())
                } else {
                    Vec::new()
                };
                ca_cutoff_forces(&gc, &window, &mut st, &law, &domain, Boundary::Open);
                if gc.is_leader() {
                    st
                } else {
                    Vec::new()
                }
            });
            let mut got: Vec<Particle> = out.into_iter().flatten().collect();
            got.sort_by_key(|p| p.id);
            assert_eq!(got.len(), n, "p={p} c={c}");
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(
                    g.force.x, w.force.x,
                    "p={p} c={c} (tx={tx},ty={ty}) id={}",
                    g.id
                );
            }
        }
    }

    #[test]
    fn clustered_distribution_still_exact() {
        // Load imbalance must not affect correctness.
        let domain = Domain::unit();
        let n = 64;
        let r_c = 0.2;
        let law = Cutoff::new(Counting, r_c);
        let mut want = init::gaussian_clusters(n, &domain, 2, 0.05, 3);
        reference::accumulate_forces(&mut want, &law, &domain, Boundary::Open);

        let grid = ProcGrid::new(8, 2).unwrap();
        let window = Window1d::from_cutoff(&domain, grid.teams(), r_c);
        let out = run_ranks(8, |world| {
            let gc = GridComms::new(world, grid);
            let all = init::gaussian_clusters(n, &domain, 2, 0.05, 3);
            let mut st = if gc.is_leader() {
                spatial_subset_1d(&all, &domain, grid.teams(), gc.team())
            } else {
                Vec::new()
            };
            ca_cutoff_forces(&gc, &window, &mut st, &law, &domain, Boundary::Open);
            if gc.is_leader() {
                st
            } else {
                Vec::new()
            }
        });
        let mut got: Vec<Particle> = out.into_iter().flatten().collect();
        got.sort_by_key(|p| p.id);
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.force.x, w.force.x, "id={}", g.id);
        }
    }

    #[test]
    fn row_steps_bounds() {
        // W=5, c=2: k=0 -> ceil((5+2-1)/2)=3, k=1 -> (5+2-2)/2 = 2 (ceil 5/2).
        assert_eq!(row_steps(5, 2, 0), 3);
        assert_eq!(row_steps(5, 2, 1), 2);
        // c=1: exactly W steps.
        assert_eq!(row_steps(7, 1, 0), 7);
        // W=1 (no cutoff neighbors): one step for row 0.
        assert_eq!(row_steps(1, 1, 0), 1);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let w = Window1d::new(8, 1); // W = 3
        assert_eq!(
            validate_cutoff(&w, 8, 4),
            Err(CutoffError::ReplicationExceedsWindow { c: 4, window: 3 })
        );
        assert_eq!(
            validate_cutoff(&w, 6, 1),
            Err(CutoffError::TeamMismatch {
                grid_teams: 6,
                window_teams: 8
            })
        );
        assert!(validate_cutoff(&w, 8, 3).is_ok());
        let e = validate_cutoff(&w, 8, 4).unwrap_err();
        assert!(e.to_string().contains("c <= 2m"));
    }

    #[test]
    fn shift_messages_scale_as_window_over_c() {
        // S_1D = O(m/c): doubling c should roughly halve shift messages.
        let domain = Domain::unit();
        let n = 64;
        let r_c = 0.25;
        let mut msgs = Vec::new();
        for c in [1usize, 2, 4] {
            let p = 16;
            let grid = ProcGrid::new(p, c).unwrap();
            let window = Window1d::from_cutoff(&domain, grid.teams(), r_c);
            let law = Cutoff::new(Counting, r_c);
            let stats = run_ranks(p, |world| {
                let gc = GridComms::new(world, grid);
                let all = init::uniform_1d(n, &domain, 2);
                let mut st = if gc.is_leader() {
                    spatial_subset_1d(&all, &domain, grid.teams(), gc.team())
                } else {
                    Vec::new()
                };
                ca_cutoff_forces(&gc, &window, &mut st, &law, &domain, Boundary::Open);
                world.stats()
            });
            let max_shift = stats
                .iter()
                .map(|s| s.phase(Phase::Shift).messages)
                .max()
                .unwrap();
            msgs.push((c, window.len(), max_shift));
        }
        // Window shrinks with teams: compare steps bound W/c + 1 per row.
        for &(c, w, max_shift) in &msgs {
            let bound = 2 * (w / c + 2) as u64; // regular + home-route per step
            assert!(
                max_shift <= bound,
                "c={c}: {max_shift} shift msgs > bound {bound}"
            );
        }
    }

    #[test]
    fn empty_teams_are_harmless() {
        // All particles in the left half: right-half teams own nothing.
        let domain = Domain::unit();
        let n = 30;
        let r_c = 0.1;
        let law = Cutoff::new(Counting, r_c);
        let mut all = init::uniform_1d(n, &domain, 7);
        for p in all.iter_mut() {
            p.pos.x *= 0.4; // squeeze into [0, 0.4)
        }
        let mut want = all.clone();
        reference::accumulate_forces(&mut want, &law, &domain, Boundary::Open);

        let grid = ProcGrid::new(8, 2).unwrap();
        let window = Window1d::from_cutoff(&domain, grid.teams(), r_c);
        let all_ref = &all;
        let out = run_ranks(8, |world| {
            let gc = GridComms::new(world, grid);
            let mut st = if gc.is_leader() {
                spatial_subset_1d(all_ref, &domain, grid.teams(), gc.team())
            } else {
                Vec::new()
            };
            ca_cutoff_forces(&gc, &window, &mut st, &law, &domain, Boundary::Open);
            if gc.is_leader() {
                st
            } else {
                Vec::new()
            }
        });
        let mut got: Vec<Particle> = out.into_iter().flatten().collect();
        got.sort_by_key(|p| p.id);
        assert_eq!(got.len(), n);
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.force.x, w.force.x, "id={}", g.id);
        }
    }
}
