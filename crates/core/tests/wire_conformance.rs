//! Wire-probe end-to-end tests: a clean probed run must conform to the
//! derived CA schedule with zero violations and populated send→recv
//! latencies on every active channel, and a chaos run's discrepancies must
//! all be attributed to the fault plan.

use ca_nbody::recovery::RetryPolicy;
use ca_nbody::sim::{
    run_distributed, run_distributed_chaos_wired, run_distributed_wired, Method, SimConfig,
};
use ca_nbody::wire::{expected_schedule, WireScheduleSpec};
use nbody_comm::{check_conformance, match_events, FaultNote, FaultPlan, Phase};
use nbody_physics::{init, Boundary, Cutoff, Domain, RepulsiveInverseSquare, SemiImplicitEuler};

fn all_pairs_cfg(steps: usize) -> SimConfig<RepulsiveInverseSquare, SemiImplicitEuler> {
    SimConfig {
        law: RepulsiveInverseSquare {
            strength: 1e-3,
            softening: 1e-3,
        },
        integrator: SemiImplicitEuler,
        domain: Domain::unit(),
        boundary: Boundary::Reflective,
        dt: 0.01,
        steps,
    }
}

fn cutoff_cfg(steps: usize) -> SimConfig<Cutoff<RepulsiveInverseSquare>, SemiImplicitEuler> {
    SimConfig {
        law: Cutoff::new(
            RepulsiveInverseSquare {
                strength: 1e-3,
                softening: 1e-3,
            },
            0.25,
        ),
        integrator: SemiImplicitEuler,
        domain: Domain::unit(),
        boundary: Boundary::Reflective,
        dt: 0.01,
        steps,
    }
}

fn spec_for<F, I>(cfg: &SimConfig<F, I>, method: Method, n: usize, p: usize) -> WireScheduleSpec {
    WireScheduleSpec {
        method,
        n,
        p,
        steps: cfg.steps,
        domain: cfg.domain,
        boundary: cfg.boundary,
        cutoff: None,
    }
}

/// Acceptance criterion: a clean all-pairs run reports zero violations,
/// with send→recv latency histograms populated for every active channel.
#[test]
fn clean_all_pairs_run_conforms_with_populated_latencies() {
    let cfg = all_pairs_cfg(3);
    let (n, p, method) = (24, 8, Method::CaAllPairs { c: 2 });
    let initial = init::uniform(n, &cfg.domain, 42);
    let (result, _, _, _, wire) = run_distributed_wired(&cfg, method, p, &initial);
    assert_eq!(result.particles.len(), n);

    // Probing must not perturb physics.
    let plain = run_distributed(&cfg, method, p, &initial);
    assert_eq!(result.particles, plain.particles);

    let expected = expected_schedule(&spec_for(&cfg, method, n, p)).unwrap();
    let report = check_conformance(&expected, &wire, &[]);
    assert_eq!(
        report.verdict(),
        "PASS",
        "clean run must conform: {:?}",
        report.violations
    );
    assert!(report.violations.is_empty());
    assert!(!report.saturated, "tiny run cannot overflow the probe ring");
    assert_eq!(report.expected_msgs, report.observed_msgs);
    // p=8 c=2: per step, 4 skew sends (row 1) + 16 shift sends (2 pipeline
    // steps x 8 ranks), x3 timesteps.
    assert_eq!(report.expected_msgs, 60);

    // Every active channel carries matched send→recv pairs with latencies.
    let stats = match_events(&wire);
    assert_eq!(stats.unmatched_sends, 0);
    assert_eq!(stats.unmatched_recvs, 0);
    assert!(stats.matched > 0);
    let mut skew = 0usize;
    let mut shift = 0usize;
    for ch in &stats.channels {
        assert_eq!(ch.matched, ch.sends, "channel {:?}", (ch.src, ch.dst));
        let lat = &ch.latency;
        assert_eq!(lat.count, ch.matched, "latency populated on every channel");
        assert!(lat.min_s >= 0.0 && lat.max_s >= lat.p50_s);
        match ch.phase {
            Phase::Skew => skew += 1,
            Phase::Shift => shift += 1,
            other => panic!("unexpected probed phase {other:?}"),
        }
    }
    assert_eq!(skew, 4, "one skew channel per row-1 rank");
    // Tags are namespaced per pipeline step, so each rank's shift traffic
    // splits into one latency channel per step (2 steps x 8 ranks).
    assert_eq!(shift, 16);
}

/// The cutoff methods conform in count-only mode: re-assignment drifts the
/// payload sizes, but who-talks-to-whom and how often is scheduled.
#[test]
fn clean_cutoff_run_conforms_in_count_only_mode() {
    let cfg = cutoff_cfg(3);
    let (n, p, method) = (40, 8, Method::Ca1dCutoff { c: 2 });
    let initial = init::uniform(n, &cfg.domain, 7);
    let (result, _, _, _, wire) = run_distributed_wired(&cfg, method, p, &initial);
    assert_eq!(result.particles.len(), n);

    let mut spec = spec_for(&cfg, method, n, p);
    spec.cutoff = Some(0.25);
    let expected = expected_schedule(&spec).unwrap();
    assert!(!expected.size_checked);
    let report = check_conformance(&expected, &wire, &[]);
    assert_eq!(
        report.verdict(),
        "PASS",
        "clean cutoff run must conform: {:?}",
        report.violations
    );
    assert!(report.observed_msgs > 0);
}

/// Acceptance criterion: a seeded chaos run with injected drops yields a
/// conformance report attributing every discrepancy to the fault plan —
/// zero unexplained violations.
#[test]
fn chaos_drops_are_fully_attributed_to_the_fault_plan() {
    let cfg = all_pairs_cfg(2);
    let (n, p, method) = (24, 8, Method::CaAllPairs { c: 2 });
    let initial = init::uniform(n, &cfg.domain, 13);
    let plan = FaultPlan::parse("drop:3@1,drop:6@0").unwrap();
    let (result, _, wire) = run_distributed_chaos_wired(
        &cfg,
        method,
        p,
        &plan,
        &RetryPolicy::with_timeout_ms(2000),
        &initial,
    );
    let chaos = result.expect("drops are recoverable");
    assert!(chaos.recovered, "the injected drops must trigger recovery");

    // The recovered trajectory is bit-identical to the fault-free one.
    let want = run_distributed(&cfg, method, p, &initial).particles;
    assert_eq!(chaos.particles, want);

    // Injected faults surface as first-class probe events.
    let mut faults = FaultNote::from_log(&wire);
    for note in plan.probe_notes() {
        if !faults.contains(&note) {
            faults.push(note);
        }
    }
    assert!(!faults.is_empty(), "fault events must be in the log");

    let expected = expected_schedule(&spec_for(&cfg, method, n, p)).unwrap();
    let report = check_conformance(&expected, &wire, &faults);
    assert!(
        !report.violations.is_empty(),
        "drops + retries must deviate from the clean schedule"
    );
    assert_eq!(
        report.unexplained(),
        0,
        "every discrepancy must be attributed: {:?}",
        report
            .violations
            .iter()
            .filter(|v| v.explained.is_none())
            .collect::<Vec<_>>()
    );
    assert_eq!(report.verdict(), "PASS");

    // Without consulting the faults the same report fails — the checker
    // is not vacuously permissive.
    let blind = check_conformance(&expected, &wire, &[]);
    assert!(blind.unexplained() > 0);
    assert_eq!(blind.verdict(), "FAIL");
}
