//! Live metrics ≡ simulated event trace: the counters the instrumented
//! communicators record during a real threaded execution must agree
//! *exactly* — per rank, per phase — with the message and byte flows the
//! discrete-event simulator derives from the same algorithm's schedule.
//! This closes the loop between measured and simulated communication: the
//! optimality audit can trust either source.

use ca_nbody::dist::{id_block_subset, spatial_subset_1d};
use ca_nbody::schedule::{AllPairsParams, CutoffParams};
use ca_nbody::{ca_all_pairs_forces, ca_cutoff_forces, GridComms, ProcGrid, Window1d};
use nbody_comm::{run_ranks_traced, CommStats, Communicator, MetricsSnapshot, Phase};
use nbody_netsim::{hopper, simulate_traced, Trace, TraceKind};
use nbody_physics::particle::PARTICLE_WIRE_BYTES;
use nbody_physics::{init, Boundary, Counting, Cutoff, Domain, Particle};

/// Force phases both sides attribute traffic to.
const PHASES: [Phase; 4] = [Phase::Broadcast, Phase::Skew, Phase::Shift, Phase::Reduce];

/// Assert exact per-rank per-phase agreement between a live execution's
/// counters and a simulated trace's events.
fn assert_exact_agreement(
    p: usize,
    stats: &[CommStats],
    metrics: &MetricsSnapshot,
    sim: &Trace,
    label: &str,
) {
    assert!(!sim.truncated, "{label}: trace cap too small");
    assert_eq!(metrics.ranks.len(), p, "{label}");
    for (rank, rm) in metrics.ranks.iter().enumerate() {
        for phase in PHASES {
            let (mut des_sends, mut des_bytes, mut des_colls) = (0u64, 0u64, 0u64);
            for e in sim.events.iter().filter(|e| e.rank == rank as u32) {
                match e.kind {
                    TraceKind::Send { bytes, phase: ph, .. } if ph == phase => {
                        des_sends += 1;
                        des_bytes += bytes;
                    }
                    TraceKind::Collective { phase: ph, .. } if ph == phase => des_colls += 1,
                    _ => {}
                }
            }
            let live_msgs = rm.counter("comm_send_messages", Some(phase));
            let live_elems = rm.counter("comm_send_elements", Some(phase));
            let live_bytes = rm.counter("comm_send_bytes", Some(phase));
            assert_eq!(
                live_msgs, des_sends,
                "{label}: rank {rank} {phase:?}: live messages vs simulated sends"
            );
            // The DES accounts bandwidth at the paper's 52-byte wire size;
            // the live counter records in-memory bytes. Both must derive
            // from the same element count.
            assert_eq!(
                live_elems * PARTICLE_WIRE_BYTES as u64,
                des_bytes,
                "{label}: rank {rank} {phase:?}: wire bytes"
            );
            assert_eq!(
                live_bytes,
                live_elems * std::mem::size_of::<Particle>() as u64,
                "{label}: rank {rank} {phase:?}: live bytes"
            );
            assert_eq!(
                stats[rank].phase(phase).collectives,
                des_colls,
                "{label}: rank {rank} {phase:?}: collective ops"
            );
            // Every message on the wire — point-to-point or a collective
            // tree constituent — lands in the size histogram exactly once.
            let tree_msgs = rm.counter("comm_collective_messages", Some(phase));
            let hist_count = rm
                .histogram("comm_message_size_bytes", Some(phase))
                .map_or(0, |h| h.count());
            assert_eq!(
                hist_count,
                live_msgs + tree_msgs,
                "{label}: rank {rank} {phase:?}: histogram observations"
            );
        }
    }
}

#[test]
fn all_pairs_live_counters_agree_exactly_with_simulated_trace() {
    let domain = Domain::unit();
    for (p, c, n) in [(4, 1, 16), (8, 2, 24), (16, 4, 33), (9, 3, 21)] {
        let grid = ProcGrid::new_all_pairs(p, c).unwrap();
        let (stats, _, metrics, _) = run_ranks_traced(p, |world| {
            let gc = GridComms::new(world, grid);
            let all = init::uniform(n, &domain, 5);
            let mut st = if gc.is_leader() {
                id_block_subset(&all, grid.teams(), gc.team())
            } else {
                Vec::new()
            };
            ca_all_pairs_forces(&gc, &mut st, &Counting, &domain, Boundary::Open);
            world.stats()
        });
        let params = AllPairsParams::new(p, c, n);
        let (_, sim) = simulate_traced(&hopper(), p, |r| params.program(r), 1_000_000);
        assert_exact_agreement(p, &stats, &metrics, &sim, &format!("all-pairs p={p} c={c} n={n}"));
    }
}

#[test]
fn cutoff_1d_live_counters_agree_exactly_with_simulated_trace() {
    let domain = Domain::unit();
    let n = 64;
    for (p, c, r_c) in [(4, 1, 0.2), (8, 2, 0.2), (12, 3, 0.3), (16, 2, 0.15)] {
        let grid = ProcGrid::new(p, c).unwrap();
        let window = Window1d::from_cutoff(&domain, grid.teams(), r_c);
        let law = Cutoff::new(Counting, r_c);
        let all = init::uniform_1d(n, &domain, 77);
        let block_sizes: Vec<usize> = (0..grid.teams())
            .map(|t| spatial_subset_1d(&all, &domain, grid.teams(), t).len())
            .collect();

        let all_ref = &all;
        let (stats, _, metrics, _) = run_ranks_traced(p, |world| {
            let gc = GridComms::new(world, grid);
            let mut st = if gc.is_leader() {
                spatial_subset_1d(all_ref, &domain, grid.teams(), gc.team())
            } else {
                Vec::new()
            };
            ca_cutoff_forces(&gc, &window, &mut st, &law, &domain, Boundary::Open);
            world.stats()
        });
        let params = CutoffParams::new(grid, window, block_sizes);
        let (_, sim) = simulate_traced(&hopper(), p, |r| params.program(r), 1_000_000);
        assert_exact_agreement(p, &stats, &metrics, &sim, &format!("cutoff1d p={p} c={c} rc={r_c}"));
    }
}
