//! Fault-injection integration tests: the recovery protocol must keep
//! distributed trajectories bit-identical to fault-free runs whenever
//! replica recovery is possible, degrade to an agreed shrink when whole
//! columns die, and fail cleanly (agreed, bounded, no deadlock) only when
//! nothing survives.

use std::time::{Duration, Instant};

use ca_nbody::dist::spatial_subset_1d;
use ca_nbody::recovery::{FaultError, RetryPolicy};
use ca_nbody::sim::{run_distributed, run_distributed_chaos, run_serial, Method, SimConfig};
use nbody_comm::{FaultKind, FaultPlan};
use nbody_physics::{
    init, Boundary, Cutoff, Domain, RepulsiveInverseSquare, SemiImplicitEuler,
};
use proptest::prelude::*;

fn all_pairs_cfg(steps: usize) -> SimConfig<RepulsiveInverseSquare, SemiImplicitEuler> {
    SimConfig {
        law: RepulsiveInverseSquare {
            strength: 1e-3,
            softening: 1e-3,
        },
        integrator: SemiImplicitEuler,
        domain: Domain::unit(),
        boundary: Boundary::Reflective,
        dt: 0.01,
        steps,
    }
}

fn cutoff_cfg(steps: usize) -> SimConfig<Cutoff<RepulsiveInverseSquare>, SemiImplicitEuler> {
    SimConfig {
        law: Cutoff::new(
            RepulsiveInverseSquare {
                strength: 1e-3,
                softening: 1e-3,
            },
            0.25,
        ),
        integrator: SemiImplicitEuler,
        domain: Domain::unit(),
        boundary: Boundary::Reflective,
        dt: 0.01,
        steps,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Delays and duplicates are benign: no retry is even needed, and the
    /// trajectory is bit-identical to the fault-free one at every
    /// replication factor.
    #[test]
    fn benign_faults_keep_trajectories_bit_identical(seed in any::<u64>()) {
        let cfg = all_pairs_cfg(2);
        let initial = init::uniform(24, &cfg.domain, 11);
        for c in [1usize, 2] {
            let method = Method::CaAllPairs { c };
            let want = run_distributed(&cfg, method, 8, &initial).particles;
            let plan = FaultPlan::seeded(
                seed, 8, 2, 3, &[FaultKind::Delay, FaultKind::Duplicate],
            );
            let got = run_distributed_chaos(
                &cfg, method, 8, &plan, &RetryPolicy::with_timeout_ms(2000), &initial,
            ).expect("benign faults cannot fail a run");
            prop_assert_eq!(&got.particles, &want, "c={} plan={}", c, plan.spec());
            prop_assert!(!got.recovered, "delays/dups must not trigger recovery");
        }
    }
}

/// A dropped message loses no state: the retry restores the checkpoint
/// locally, so drops are recoverable even without replication (`c = 1`).
#[test]
fn drops_recover_bit_identically_at_every_c() {
    let cfg = all_pairs_cfg(2);
    let initial = init::uniform(24, &cfg.domain, 13);
    // Note: step 0 is the skew, where only rows k > 0 send — aim the
    // skew drop at rank 6 (team 2, row 1), not a row-0 rank.
    for (c, rank, step) in [(1usize, 3usize, 1usize), (2, 5, 1), (2, 6, 0)] {
        let method = Method::CaAllPairs { c };
        let want = run_distributed(&cfg, method, 8, &initial).particles;
        let plan = FaultPlan::parse(&format!("drop:{rank}@{step}")).unwrap();
        let got = run_distributed_chaos(
            &cfg,
            method,
            8,
            &plan,
            &RetryPolicy::with_timeout_ms(400),
            &initial,
        )
        .expect("drops are always recoverable");
        assert_eq!(got.particles, want, "c={c} rank={rank} step={step}");
        assert!(got.recovered, "a drop must be detected and retried");
        assert_eq!(got.max_attempts, 2);
    }
}

/// A rank killed at any pipeline step (skew = 0, shifts = 1..) with a
/// surviving replica (`c >= 2`) is resynced from a teammate; the completed
/// trajectory is bit-for-bit the fault-free one.
#[test]
fn kill_at_each_step_recovers_bit_identically_with_replication() {
    let cfg = all_pairs_cfg(2);
    let initial = init::uniform(24, &cfg.domain, 17);
    let method = Method::CaAllPairs { c: 2 };
    let want = run_distributed(&cfg, method, 8, &initial).particles;
    // p=8, c=2: 4 teams x 2 rows, p/c^2 = 2 shift steps + the skew.
    for step in 0..=2usize {
        for rank in [1usize, 6] {
            let plan = FaultPlan::kill(rank, step);
            let got = run_distributed_chaos(
                &cfg,
                method,
                8,
                &plan,
                &RetryPolicy::with_timeout_ms(500),
                &initial,
            )
            .unwrap_or_else(|e| panic!("kill:{rank}@{step} must recover at c=2: {e}"));
            assert_eq!(got.particles, want, "kill:{rank}@{step}");
            assert!(got.recovered);
            assert_eq!(got.max_attempts, 2, "one retry suffices for one kill");
            assert!(
                got.metrics.sum_counter("fault_injected_kill", None) >= 1,
                "kill must be recorded in metrics"
            );
            assert!(got.metrics.sum_counter("fault_recovered_total", None) >= 1);
            assert!(
                got.metrics.sum_counter("recovery_bytes_total", None) > 0,
                "resync traffic must be accounted"
            );
        }
    }
}

/// The cutoff pipeline (home-route re-injection and all) recovers the same
/// way, across timesteps with spatial re-assignment in between.
#[test]
fn cutoff_kill_recovers_bit_identically() {
    let cfg = cutoff_cfg(2);
    let initial = init::uniform(40, &cfg.domain, 7);
    for method in [Method::Ca1dCutoff { c: 2 }, Method::Ca2dCutoff { c: 2 }] {
        let want = run_distributed(&cfg, method, 8, &initial).particles;
        for (rank, step) in [(5usize, 1usize), (2, 0)] {
            let plan = FaultPlan::kill(rank, step);
            let got = run_distributed_chaos(
                &cfg,
                method,
                8,
                &plan,
                &RetryPolicy::with_timeout_ms(500),
                &initial,
            )
            .unwrap_or_else(|e| panic!("{method:?} kill:{rank}@{step}: {e}"));
            assert_eq!(got.particles, want, "{method:?} kill:{rank}@{step}");
            assert!(got.recovered);
        }
    }
}

/// Losing a `c = 1` column no longer fails the run: the survivors agree
/// on the dead team, shrink the world onto themselves, and finish the
/// trajectory — bit-identical to a plain distributed run on the surviving
/// subset (the block drops before the failed step's forces ever act).
#[test]
fn c1_kill_shrinks_onto_survivors_and_completes() {
    let cfg = all_pairs_cfg(3);
    let initial = init::uniform(24, &cfg.domain, 5);
    let policy = RetryPolicy::with_timeout_ms(300);
    let start = Instant::now();
    let got = run_distributed_chaos(
        &cfg,
        Method::CaAllPairs { c: 1 },
        4,
        &FaultPlan::kill(2, 1),
        &policy,
        &initial,
    )
    .expect("a c=1 kill degrades to a shrink, not a failure");
    // Degradation cascades through a bounded number of timeouts; far
    // below the blocking-collective deadline a deadlock would hit.
    assert!(
        start.elapsed() < Duration::from_secs(20),
        "shrink took {:?}",
        start.elapsed()
    );
    assert_eq!(got.shrinks, 1);
    assert_eq!(got.final_ranks, 3);
    assert_eq!(got.lost_particles, 6, "team 2 of 4 owned ids 12..18");
    assert!(got.metrics.sum_counter("world_shrunk_total", None) >= 1);
    // Recomposed reference: drop team 2's id-block from the initial set
    // and run the whole trajectory plain on the 3 survivors.
    let survivors: Vec<_> = initial
        .iter()
        .filter(|q| !(12u64..18).contains(&q.id))
        .cloned()
        .collect();
    let want = run_distributed(&cfg, Method::CaAllPairs { c: 1 }, 3, &survivors).particles;
    assert_eq!(
        got.particles, want,
        "shrunken trajectory must be bit-identical to the recomposed run"
    );
}

/// Both replicas of one column dying together exhausts replica recovery
/// for that team even at `c = 2`; the run shrinks instead of failing,
/// re-gridding at the largest replication the 6 survivors support
/// (`c' = 1`, since 3 teams is not divisible by 2).
#[test]
fn double_kill_same_column_shrinks_at_c2() {
    let cfg = all_pairs_cfg(2);
    let initial = init::uniform(24, &cfg.domain, 17);
    // p=8, c=2: team 1 spans ranks 1 (row 0) and 5 (row 1).
    let plan = FaultPlan::parse("kill:1@1,kill:5@1").unwrap();
    let policy = RetryPolicy::with_timeout_ms(500);
    let got = run_distributed_chaos(&cfg, Method::CaAllPairs { c: 2 }, 8, &plan, &policy, &initial)
        .expect("losing one of four columns must shrink, not fail");
    assert_eq!(got.shrinks, 1);
    assert_eq!(got.final_ranks, 6);
    assert_eq!(got.lost_particles, 6, "team 1 of 4 owned ids 6..12");
    let survivors: Vec<_> = initial
        .iter()
        .filter(|q| !(6u64..12).contains(&q.id))
        .cloned()
        .collect();
    let want = run_distributed(&cfg, Method::CaAllPairs { c: 1 }, 6, &survivors).particles;
    assert_eq!(got.particles, want, "post-shrink world runs at c' = 1 on 6 ranks");
}

/// The cutoff driver shrinks too: survivors re-derive the spatial
/// decomposition and its interaction window for the smaller team count
/// and keep tracking the serial reference on the surviving subset.
#[test]
fn cutoff_c1_kill_shrinks_and_tracks_serial_reference() {
    let cfg = cutoff_cfg(3);
    let initial = init::uniform(40, &cfg.domain, 7);
    let policy = RetryPolicy::with_timeout_ms(400);
    let got = run_distributed_chaos(
        &cfg,
        Method::Ca1dCutoff { c: 1 },
        4,
        &FaultPlan::kill(1, 1),
        &policy,
        &initial,
    )
    .expect("a cutoff c=1 kill degrades to a shrink");
    assert_eq!(got.shrinks, 1);
    assert_eq!(got.final_ranks, 3);
    // The dead team's slab (step-0 decomposition over 4 teams) is lost
    // before any motion; the remainder follows the serial reference.
    let dead: Vec<u64> = spatial_subset_1d(&initial, &cfg.domain, 4, 1)
        .iter()
        .map(|q| q.id)
        .collect();
    assert_eq!(got.lost_particles, dead.len());
    let survivors: Vec<_> = initial
        .iter()
        .filter(|q| !dead.contains(&q.id))
        .cloned()
        .collect();
    let want = run_serial(&cfg, &survivors);
    assert_eq!(got.particles.len(), want.len());
    for (g, w) in got.particles.iter().zip(&want) {
        assert_eq!(g.id, w.id);
        let dp = (g.pos - w.pos).norm();
        let dv = (g.vel - w.vel).norm();
        assert!(
            dp <= 1e-9 && dv <= 1e-9,
            "id={} dp={dp} dv={dv} after cutoff shrink",
            g.id
        );
    }
}

/// Faults recurring past the retry budget surface as `RetriesExhausted`
/// rather than looping forever.
#[test]
fn persistent_faults_exhaust_retries() {
    let cfg = all_pairs_cfg(1);
    let initial = init::uniform(16, &cfg.domain, 9);
    // Three drops aimed at the same rank across successive attempts: each
    // retry re-arms the next event (events are one-shot, but distinct
    // events fire on distinct attempts at the same step).
    let plan = FaultPlan::parse("drop:1@1,drop:1@1,drop:1@1").unwrap();
    let policy = RetryPolicy::fixed(300, 2);
    let err = run_distributed_chaos(&cfg, Method::CaAllPairs { c: 2 }, 8, &plan, &policy, &initial)
        .expect_err("three faults must exhaust a 2-retry budget");
    assert_eq!(err, FaultError::RetriesExhausted { attempts: 3 });
}

/// Transient-class deadlines back off across those retries: the second
/// retry waits longer than the first (visible as elapsed wall time with a
/// deliberately spread policy).
#[test]
fn backoff_spreads_successive_retry_deadlines() {
    let cfg = all_pairs_cfg(1);
    let initial = init::uniform(16, &cfg.domain, 9);
    let plan = FaultPlan::parse("drop:1@1,drop:1@1").unwrap();
    // Two drops => attempts at deadlines ~200ms and ~400ms before the
    // third attempt succeeds; a fixed policy would spend ~400ms total,
    // the backoff one ~600ms.
    let policy = RetryPolicy {
        max_retries: 3,
        ..RetryPolicy::with_timeout_ms(200)
    };
    let start = Instant::now();
    let got = run_distributed_chaos(&cfg, Method::CaAllPairs { c: 2 }, 8, &plan, &policy, &initial)
        .expect("two drops recover within three retries");
    assert_eq!(got.max_attempts, 3);
    assert!(
        start.elapsed() >= Duration::from_millis(550),
        "backoff must lengthen the second retry (elapsed {:?})",
        start.elapsed()
    );
}
