//! Fault-injection integration tests: the recovery protocol must keep
//! distributed trajectories bit-identical to fault-free runs whenever
//! recovery is possible, and fail cleanly (agreed, bounded, no deadlock)
//! when it is not.

use std::time::{Duration, Instant};

use ca_nbody::recovery::{FaultConfig, FaultError};
use ca_nbody::sim::{run_distributed, run_distributed_chaos, Method, SimConfig};
use nbody_comm::{FaultKind, FaultPlan};
use nbody_physics::{
    init, Boundary, Cutoff, Domain, RepulsiveInverseSquare, SemiImplicitEuler,
};
use proptest::prelude::*;

fn all_pairs_cfg(steps: usize) -> SimConfig<RepulsiveInverseSquare, SemiImplicitEuler> {
    SimConfig {
        law: RepulsiveInverseSquare {
            strength: 1e-3,
            softening: 1e-3,
        },
        integrator: SemiImplicitEuler,
        domain: Domain::unit(),
        boundary: Boundary::Reflective,
        dt: 0.01,
        steps,
    }
}

fn cutoff_cfg(steps: usize) -> SimConfig<Cutoff<RepulsiveInverseSquare>, SemiImplicitEuler> {
    SimConfig {
        law: Cutoff::new(
            RepulsiveInverseSquare {
                strength: 1e-3,
                softening: 1e-3,
            },
            0.25,
        ),
        integrator: SemiImplicitEuler,
        domain: Domain::unit(),
        boundary: Boundary::Reflective,
        dt: 0.01,
        steps,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Delays and duplicates are benign: no retry is even needed, and the
    /// trajectory is bit-identical to the fault-free one at every
    /// replication factor.
    #[test]
    fn benign_faults_keep_trajectories_bit_identical(seed in any::<u64>()) {
        let cfg = all_pairs_cfg(2);
        let initial = init::uniform(24, &cfg.domain, 11);
        for c in [1usize, 2] {
            let method = Method::CaAllPairs { c };
            let want = run_distributed(&cfg, method, 8, &initial).particles;
            let plan = FaultPlan::seeded(
                seed, 8, 2, 3, &[FaultKind::Delay, FaultKind::Duplicate],
            );
            let got = run_distributed_chaos(
                &cfg, method, 8, &plan, &FaultConfig::with_timeout_ms(2000), &initial,
            ).expect("benign faults cannot fail a run");
            prop_assert_eq!(&got.particles, &want, "c={} plan={}", c, plan.spec());
            prop_assert!(!got.recovered, "delays/dups must not trigger recovery");
        }
    }
}

/// A dropped message loses no state: the retry restores the checkpoint
/// locally, so drops are recoverable even without replication (`c = 1`).
#[test]
fn drops_recover_bit_identically_at_every_c() {
    let cfg = all_pairs_cfg(2);
    let initial = init::uniform(24, &cfg.domain, 13);
    // Note: step 0 is the skew, where only rows k > 0 send — aim the
    // skew drop at rank 6 (team 2, row 1), not a row-0 rank.
    for (c, rank, step) in [(1usize, 3usize, 1usize), (2, 5, 1), (2, 6, 0)] {
        let method = Method::CaAllPairs { c };
        let want = run_distributed(&cfg, method, 8, &initial).particles;
        let plan = FaultPlan::parse(&format!("drop:{rank}@{step}")).unwrap();
        let got = run_distributed_chaos(
            &cfg,
            method,
            8,
            &plan,
            &FaultConfig::with_timeout_ms(400),
            &initial,
        )
        .expect("drops are always recoverable");
        assert_eq!(got.particles, want, "c={c} rank={rank} step={step}");
        assert!(got.recovered, "a drop must be detected and retried");
        assert_eq!(got.max_attempts, 2);
    }
}

/// A rank killed at any pipeline step (skew = 0, shifts = 1..) with a
/// surviving replica (`c >= 2`) is resynced from a teammate; the completed
/// trajectory is bit-for-bit the fault-free one.
#[test]
fn kill_at_each_step_recovers_bit_identically_with_replication() {
    let cfg = all_pairs_cfg(2);
    let initial = init::uniform(24, &cfg.domain, 17);
    let method = Method::CaAllPairs { c: 2 };
    let want = run_distributed(&cfg, method, 8, &initial).particles;
    // p=8, c=2: 4 teams x 2 rows, p/c^2 = 2 shift steps + the skew.
    for step in 0..=2usize {
        for rank in [1usize, 6] {
            let plan = FaultPlan::kill(rank, step);
            let got = run_distributed_chaos(
                &cfg,
                method,
                8,
                &plan,
                &FaultConfig::with_timeout_ms(500),
                &initial,
            )
            .unwrap_or_else(|e| panic!("kill:{rank}@{step} must recover at c=2: {e}"));
            assert_eq!(got.particles, want, "kill:{rank}@{step}");
            assert!(got.recovered);
            assert_eq!(got.max_attempts, 2, "one retry suffices for one kill");
            assert!(
                got.metrics.sum_counter("fault_injected_kill", None) >= 1,
                "kill must be recorded in metrics"
            );
            assert!(got.metrics.sum_counter("fault_recovered_total", None) >= 1);
            assert!(
                got.metrics.sum_counter("recovery_bytes_total", None) > 0,
                "resync traffic must be accounted"
            );
        }
    }
}

/// The cutoff pipeline (home-route re-injection and all) recovers the same
/// way, across timesteps with spatial re-assignment in between.
#[test]
fn cutoff_kill_recovers_bit_identically() {
    let cfg = cutoff_cfg(2);
    let initial = init::uniform(40, &cfg.domain, 7);
    for method in [Method::Ca1dCutoff { c: 2 }, Method::Ca2dCutoff { c: 2 }] {
        let want = run_distributed(&cfg, method, 8, &initial).particles;
        for (rank, step) in [(5usize, 1usize), (2, 0)] {
            let plan = FaultPlan::kill(rank, step);
            let got = run_distributed_chaos(
                &cfg,
                method,
                8,
                &plan,
                &FaultConfig::with_timeout_ms(500),
                &initial,
            )
            .unwrap_or_else(|e| panic!("{method:?} kill:{rank}@{step}: {e}"));
            assert_eq!(got.particles, want, "{method:?} kill:{rank}@{step}");
            assert!(got.recovered);
        }
    }
}

/// Without replication there is no surviving copy of the dead rank's
/// inputs: the run must end with the documented `Unrecoverable` error —
/// agreed by every rank, within a bounded number of timeouts, no deadlock.
#[test]
fn kill_without_replication_fails_cleanly_within_timeout_bound() {
    let cfg = all_pairs_cfg(2);
    let initial = init::uniform(16, &cfg.domain, 5);
    let fc = FaultConfig::with_timeout_ms(300);
    let start = Instant::now();
    let err = run_distributed_chaos(
        &cfg,
        Method::CaAllPairs { c: 1 },
        4,
        &FaultPlan::kill(2, 1),
        &fc,
        &initial,
    )
    .expect_err("c=1 cannot recover a kill");
    assert!(matches!(err, FaultError::Unrecoverable { c: 1, .. }), "{err}");
    // Detection cascades through at most O(pipeline steps) timeouts; far
    // below the blocking-collective deadline (60 s) a deadlock would hit.
    assert!(
        start.elapsed() < Duration::from_secs(20),
        "clean shutdown took {:?}",
        start.elapsed()
    );
}

/// Faults recurring past the retry budget surface as `RetriesExhausted`
/// rather than looping forever.
#[test]
fn persistent_faults_exhaust_retries() {
    let cfg = all_pairs_cfg(1);
    let initial = init::uniform(16, &cfg.domain, 9);
    // Three drops aimed at the same rank across successive attempts: each
    // retry re-arms the next event (events are one-shot, but distinct
    // events fire on distinct attempts at the same step).
    let plan = FaultPlan::parse("drop:1@1,drop:1@1,drop:1@1").unwrap();
    let fc = FaultConfig {
        recv_timeout: Duration::from_millis(300),
        max_retries: 2,
    };
    let err = run_distributed_chaos(&cfg, Method::CaAllPairs { c: 2 }, 8, &plan, &fc, &initial)
        .expect_err("three faults must exhaust a 2-retry budget");
    assert_eq!(err, FaultError::RetriesExhausted { attempts: 3 });
}
