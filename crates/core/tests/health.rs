//! Numerical-health integration tests: clean CA runs must report clean
//! invariants with energy/momentum series landing in the timeline, a
//! seeded NaN must abort every rank with the injected (rank, step) blamed
//! in the flight recorder, and a seeded replica corruption must be caught
//! by the fingerprint cross-check and repaired from a clean row.

use ca_nbody::recovery::{FaultError, RetryPolicy};
use ca_nbody::sim::{run_distributed_health, Method, SimConfig};
use nbody_comm::{EventKind, FaultPlan};
use nbody_physics::{init, Boundary, Cutoff, Domain, Gravity, VelocityVerlet};
use nbody_simhealth::HealthConfig;

fn cfg(steps: usize) -> SimConfig<Gravity, VelocityVerlet> {
    SimConfig {
        law: Gravity {
            g: 1e-3,
            softening: 0.05,
        },
        integrator: VelocityVerlet,
        domain: Domain::unit(),
        boundary: Boundary::Open,
        dt: 1e-3,
        steps,
    }
}

#[test]
fn clean_all_pairs_run_reports_clean_invariants() {
    let cfg = cfg(8);
    let initial = init::uniform(48, &cfg.domain, 7);
    let (res, timeline) = run_distributed_health(
        &cfg,
        Method::CaAllPairs { c: 2 },
        8,
        &FaultPlan::empty(),
        &RetryPolicy::with_timeout_ms(200),
        &HealthConfig::enabled(),
        &initial,
    );
    let (run, report) = res.expect("clean run succeeds");
    assert_eq!(run.particles.len(), 48);
    assert!(report.is_clean(), "no sentinel events or mismatches: {report:?}");
    assert_eq!(report.steps_checked, 8);
    assert!(
        report.max_rel_energy_drift < 1e-3,
        "velocity-Verlet gravity drift stays tiny over 8 steps, got {}",
        report.max_rel_energy_drift
    );
    assert!(
        report.max_momentum_norm < 1e-12,
        "open-boundary gravity conserves momentum to rounding, got {}",
        report.max_momentum_norm
    );
    assert!(report.energy_first < 0.0, "bound system has negative energy");
    // Every rank's timeline carries the reduced series (identical values).
    let energies = timeline.energy_series();
    assert_eq!(energies.steps.len(), 8, "one energy point per checked step");
    assert_eq!(timeline.momentum_series().steps.len(), 8);
}

#[test]
fn health_cadence_checks_every_kth_step() {
    let cfg = cfg(9);
    let initial = init::uniform(32, &cfg.domain, 3);
    let health = HealthConfig {
        every: 3,
        ..HealthConfig::enabled()
    };
    let (res, timeline) = run_distributed_health(
        &cfg,
        Method::CaAllPairs { c: 1 },
        4,
        &FaultPlan::empty(),
        &RetryPolicy::with_timeout_ms(200),
        &health,
        &initial,
    );
    let (_, report) = res.expect("clean run succeeds");
    // Steps 3 and 6 (step 0 is checked too but energy series keys off
    // non-zero energy, which step 0 also has).
    assert_eq!(report.steps_checked, 3);
    assert_eq!(timeline.energy_series().steps.len(), 3);
}

#[test]
fn injected_nan_is_blamed_at_the_seeded_rank_and_step() {
    let cfg = cfg(6);
    let initial = init::uniform(48, &cfg.domain, 7);
    let mut health = HealthConfig::enabled();
    health.injection.nan = Some((0, 3));
    let (res, timeline) = run_distributed_health(
        &cfg,
        Method::CaAllPairs { c: 2 },
        8,
        &FaultPlan::empty(),
        &RetryPolicy::with_timeout_ms(200),
        &health,
        &initial,
    );
    let err = res.expect_err("seeded NaN must abort the run");
    match &err {
        FaultError::NumericalFault { rank, step, detail } => {
            assert_eq!(*rank, 0);
            assert_eq!(*step, 3);
            assert!(detail.contains("non-finite"), "detail: {detail}");
        }
        other => panic!("expected NumericalFault, got {other:?}"),
    }
    // The blamed rank's flight recorder holds the sentinel event and the
    // postmortem failure marker; no other rank claims the blame.
    let rt = &timeline.ranks[0];
    let ev = rt
        .events
        .iter()
        .find(|e| e.kind == EventKind::NonFinite)
        .expect("blamed rank records a non-finite flight event");
    assert_eq!(ev.step, Some(3));
    assert!(ev.detail.contains("force"), "blames the force phase: {}", ev.detail);
    assert!(rt.failure.is_some(), "postmortem marker set");
    for rt in &timeline.ranks[1..] {
        assert!(rt.events.iter().all(|e| e.kind != EventKind::NonFinite));
    }
}

#[test]
fn corrupted_replica_is_caught_and_repaired_by_the_cross_check() {
    let cfg = cfg(6);
    let initial = init::uniform(48, &cfg.domain, 7);
    let mut health = HealthConfig::enabled();
    // p=8, c=2: rank 4 is (team 0, row 1), a replica of leader rank 0.
    health.injection.corrupt = Some((4, 2));
    let (res, timeline) = run_distributed_health(
        &cfg,
        Method::CaAllPairs { c: 2 },
        8,
        &FaultPlan::empty(),
        &RetryPolicy::with_timeout_ms(200),
        &health,
        &initial,
    );
    let (run, report) = res.expect("cross-check repairs the corrupt replica");
    assert!(run.recovered, "repair counts as a recovery");
    assert!(
        report.fingerprint_mismatches >= 1,
        "the mismatch is counted: {report:?}"
    );
    assert_eq!(report.sentinel_events, 0);
    // The corrupted rank's flight recorder names the disagreement.
    let rt = &timeline.ranks[4];
    assert!(
        rt.events.iter().any(|e| e.kind == EventKind::ReplicaMismatch),
        "rank 4 records the fingerprint mismatch"
    );
    // The run still finishes with clean physics afterwards.
    assert!(report.max_momentum_norm < 1e-12);
    assert_eq!(run.particles.len(), 48);
}

#[test]
fn cutoff_driver_reports_health_too() {
    let law = Cutoff::new(
        Gravity {
            g: 1e-4,
            softening: 0.05,
        },
        0.3,
    );
    let cfg = SimConfig {
        law,
        integrator: VelocityVerlet,
        domain: Domain::unit(),
        boundary: Boundary::Periodic,
        dt: 1e-3,
        steps: 4,
    };
    let initial = init::uniform(40, &cfg.domain, 9);
    let (res, timeline) = run_distributed_health(
        &cfg,
        Method::Ca1dCutoff { c: 2 },
        8,
        &FaultPlan::empty(),
        &RetryPolicy::with_timeout_ms(200),
        &HealthConfig::enabled(),
        &initial,
    );
    let (_, report) = res.expect("clean cutoff run succeeds");
    assert!(report.is_clean(), "{report:?}");
    assert_eq!(report.steps_checked, 4);
    assert_eq!(timeline.energy_series().steps.len(), 4);
}
