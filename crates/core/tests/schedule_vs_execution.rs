//! Schedule ≡ execution: the op streams fed to the discrete-event simulator
//! must match what the executable algorithms actually do on the threaded
//! runtime — same per-phase message counts, same bytes (52 B/particle),
//! same collective counts, same total interactions. This is the link that
//! makes simulated figures trustworthy.

use ca_nbody::dist::{id_block_subset, spatial_subset_1d, spatial_subset_2d, team_grid_dims};
use ca_nbody::schedule::{count_ops, AllPairsParams, CutoffParams, OpCounts, ParticleRingParams};
use ca_nbody::{ca_all_pairs_forces, ca_cutoff_forces, GridComms, ProcGrid, Window1d, Window2d};
use nbody_comm::{run_ranks, CommStats, Communicator, Phase, ALL_PHASES};
use nbody_physics::particle::PARTICLE_WIRE_BYTES;
use nbody_physics::{init, Boundary, Counting, Cutoff, Domain};

/// Compare one rank's executed stats against its schedule's op counts for
/// the force phases (Broadcast, Skew, Shift, Reduce).
fn assert_counts_match(rank: usize, stats: &CommStats, sched: &OpCounts, label: &str) {
    for phase in [Phase::Broadcast, Phase::Skew, Phase::Shift, Phase::Reduce] {
        let got = stats.phase(phase);
        let idx = phase.index();
        assert_eq!(
            got.messages, sched.sends[idx],
            "{label}: rank {rank} phase {phase}: executed {} msgs, schedule {}",
            got.messages, sched.sends[idx]
        );
        assert_eq!(
            got.elements * PARTICLE_WIRE_BYTES as u64,
            sched.send_bytes[idx],
            "{label}: rank {rank} phase {phase}: bytes mismatch"
        );
        assert_eq!(
            got.collectives, sched.collectives[idx],
            "{label}: rank {rank} phase {phase}: collective count mismatch"
        );
    }
}

#[test]
fn all_pairs_schedule_matches_execution() {
    let domain = Domain::unit();
    for (p, c, n) in [(4, 1, 16), (4, 2, 16), (8, 2, 24), (16, 4, 33), (9, 3, 21)] {
        let grid = ProcGrid::new_all_pairs(p, c).unwrap();
        let stats = run_ranks(p, |world| {
            let gc = GridComms::new(world, grid);
            let all = init::uniform(n, &domain, 31);
            let mut st = if gc.is_leader() {
                id_block_subset(&all, grid.teams(), gc.team())
            } else {
                Vec::new()
            };
            ca_all_pairs_forces(&gc, &mut st, &Counting, &domain, Boundary::Open);
            world.stats()
        });
        let params = AllPairsParams::new(p, c, n);
        for (rank, s) in stats.iter().enumerate() {
            let sched = count_ops(params.program(rank));
            assert_counts_match(rank, s, &sched, &format!("all-pairs p={p} c={c} n={n}"));
        }
    }
}

#[test]
fn cutoff_1d_schedule_matches_execution() {
    let domain = Domain::unit();
    let n = 64;
    for (p, c, r_c) in [(4, 1, 0.2), (8, 2, 0.2), (12, 3, 0.3), (16, 2, 0.15)] {
        let grid = ProcGrid::new(p, c).unwrap();
        let window = Window1d::from_cutoff(&domain, grid.teams(), r_c);
        let law = Cutoff::new(Counting, r_c);
        let all = init::uniform_1d(n, &domain, 77);
        let block_sizes: Vec<usize> = (0..grid.teams())
            .map(|t| spatial_subset_1d(&all, &domain, grid.teams(), t).len())
            .collect();

        let all_ref = &all;
        let stats = run_ranks(p, |world| {
            let gc = GridComms::new(world, grid);
            let mut st = if gc.is_leader() {
                spatial_subset_1d(all_ref, &domain, grid.teams(), gc.team())
            } else {
                Vec::new()
            };
            ca_cutoff_forces(&gc, &window, &mut st, &law, &domain, Boundary::Open);
            world.stats()
        });
        let params = CutoffParams::new(grid, window, block_sizes);
        for (rank, s) in stats.iter().enumerate() {
            let sched = count_ops(params.program(rank));
            assert_counts_match(rank, s, &sched, &format!("cutoff1d p={p} c={c} rc={r_c}"));
        }
    }
}

#[test]
fn cutoff_2d_schedule_matches_execution() {
    let domain = Domain::unit();
    let n = 90;
    for (p, c, r_c) in [(4, 1, 0.3), (8, 2, 0.3), (18, 2, 0.25)] {
        let grid = ProcGrid::new(p, c).unwrap();
        let (tx, ty) = team_grid_dims(grid.teams());
        let window = Window2d::from_cutoff(&domain, tx, ty, r_c);
        if ca_nbody::cutoff::validate_cutoff(&window, grid.teams(), c).is_err() {
            continue;
        }
        let law = Cutoff::new(Counting, r_c);
        let all = init::uniform(n, &domain, 13);
        let block_sizes: Vec<usize> = (0..grid.teams())
            .map(|t| spatial_subset_2d(&all, &domain, tx, ty, t).len())
            .collect();

        let all_ref = &all;
        let stats = run_ranks(p, |world| {
            let gc = GridComms::new(world, grid);
            let mut st = if gc.is_leader() {
                spatial_subset_2d(all_ref, &domain, tx, ty, gc.team())
            } else {
                Vec::new()
            };
            ca_cutoff_forces(&gc, &window, &mut st, &law, &domain, Boundary::Open);
            world.stats()
        });
        let params = CutoffParams::new(grid, window, block_sizes);
        for (rank, s) in stats.iter().enumerate() {
            let sched = count_ops(params.program(rank));
            assert_counts_match(rank, s, &sched, &format!("cutoff2d p={p} c={c} rc={r_c}"));
        }
    }
}

#[test]
fn ring_schedule_matches_execution() {
    let domain = Domain::unit();
    let (p, n) = (6, 25);
    let stats = run_ranks(p, |world| {
        let all = init::uniform(n, &domain, 3);
        let mut my = id_block_subset(&all, p, world.rank());
        ca_nbody::baselines::particle_ring_forces(world, &mut my, &Counting, &domain, Boundary::Open);
        world.stats()
    });
    let params = ParticleRingParams { p, n };
    for (rank, s) in stats.iter().enumerate() {
        let sched = count_ops(params.program(rank));
        assert_counts_match(rank, s, &sched, "ring");
    }
}

#[test]
fn schedules_simulate_without_deadlock() {
    // End-to-end: feed every schedule through the DES on both machine
    // models and check basic sanity of the reports.
    use nbody_netsim::{hopper, intrepid, simulate};
    for machine in [hopper(), intrepid()] {
        let params = AllPairsParams::new(16, 2, 128);
        let rep = simulate(&machine, 16, |r| params.program(r));
        assert!(rep.makespan > 0.0);
        assert!(rep.mean().compute > 0.0);
        assert!(rep.mean().phase(Phase::Shift) > 0.0);

        let grid = ProcGrid::new(16, 2).unwrap();
        let window = Window1d::new(8, 2);
        let cp = CutoffParams::new(grid, window, vec![8; 8])
            .with_reassign(ca_nbody::schedule::ReassignModel { bytes: 52 });
        let rep = simulate(&machine, 16, |r| cp.program(r));
        assert!(rep.makespan > 0.0);
        assert!(rep.mean().phase(Phase::Reassign) > 0.0, "{}", machine.name);
    }
}

#[test]
fn executed_phase_totals_cover_all_phases_sanely() {
    // No phantom phases: executions must not record anything under Reassign
    // during a pure force evaluation.
    let domain = Domain::unit();
    let grid = ProcGrid::new_all_pairs(8, 2).unwrap();
    let stats = run_ranks(8, |world| {
        let gc = GridComms::new(world, grid);
        let all = init::uniform(16, &domain, 1);
        let mut st = if gc.is_leader() {
            id_block_subset(&all, grid.teams(), gc.team())
        } else {
            Vec::new()
        };
        ca_all_pairs_forces(&gc, &mut st, &Counting, &domain, Boundary::Open);
        world.stats()
    });
    for s in &stats {
        assert_eq!(s.phase(Phase::Reassign).messages, 0);
        let total: u64 = ALL_PHASES.iter().map(|&p| s.phase(p).messages).sum();
        assert_eq!(total, s.total_messages());
    }
}
