//! Property-based integration tests: randomized configurations of the
//! distributed algorithms must always agree with the serial reference
//! (pair coverage is exact under the Counting law regardless of reduction
//! order), and the schedule generators must always conserve the global
//! interaction count.

use ca_nbody::dist::{id_block_subset, spatial_subset_1d};
use ca_nbody::schedule::{count_ops, AllPairsParams, CutoffParams};
use ca_nbody::{ca_all_pairs_forces, ca_cutoff_forces, GridComms, ProcGrid, Window, Window1d};
use nbody_comm::run_ranks;
use nbody_physics::{init, Boundary, Counting, Cutoff, Domain, Particle};
use proptest::prelude::*;

/// Valid (p, c) pairs for the all-pairs grid, kept small enough that each
/// proptest case spawns at most 18 threads.
fn all_pairs_grid() -> impl Strategy<Value = (usize, usize)> {
    prop_oneof![
        Just((1usize, 1usize)),
        Just((2, 1)),
        Just((4, 1)),
        Just((4, 2)),
        Just((8, 2)),
        Just((9, 3)),
        Just((12, 2)),
        Just((16, 2)),
        Just((16, 4)),
        Just((18, 3)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ca_all_pairs_counts_every_pair((p, c) in all_pairs_grid(),
                                      n in 1usize..40,
                                      seed in 0u64..1000) {
        let domain = Domain::unit();
        let grid = ProcGrid::new_all_pairs(p, c).unwrap();
        let out = run_ranks(p, |world| {
            let gc = GridComms::new(world, grid);
            let all = init::uniform(n, &domain, seed);
            let mut st = if gc.is_leader() {
                id_block_subset(&all, grid.teams(), gc.team())
            } else {
                Vec::new()
            };
            ca_all_pairs_forces(&gc, &mut st, &Counting, &domain, Boundary::Open);
            if gc.is_leader() { st } else { Vec::new() }
        });
        let flat: Vec<Particle> = out.into_iter().flatten().collect();
        prop_assert_eq!(flat.len(), n);
        for q in &flat {
            prop_assert_eq!(q.force.x, (n - 1) as f64);
        }
    }

    #[test]
    fn ca_cutoff_counts_exact_neighbors(pc in prop_oneof![
                                            Just((4usize, 1usize)),
                                            Just((8, 2)),
                                            Just((12, 2)),
                                            Just((16, 2)),
                                        ],
                                        n in 2usize..50,
                                        rc_percent in 5u32..60,
                                        seed in 0u64..1000) {
        let (p, c) = pc;
        let domain = Domain::unit();
        let r_c = rc_percent as f64 / 100.0;
        let grid = ProcGrid::new(p, c).unwrap();
        let window = Window1d::from_cutoff(&domain, grid.teams(), r_c);
        prop_assume!(ca_nbody::cutoff::validate_cutoff(&window, grid.teams(), c).is_ok());
        let law = Cutoff::new(Counting, r_c);

        let all = init::uniform_1d(n, &domain, seed);
        let all_ref = &all;
        let out = run_ranks(p, |world| {
            let gc = GridComms::new(world, grid);
            let mut st = if gc.is_leader() {
                spatial_subset_1d(all_ref, &domain, grid.teams(), gc.team())
            } else {
                Vec::new()
            };
            ca_cutoff_forces(&gc, &window, &mut st, &law, &domain, Boundary::Open);
            if gc.is_leader() { st } else { Vec::new() }
        });
        let mut flat: Vec<Particle> = out.into_iter().flatten().collect();
        flat.sort_by_key(|q| q.id);
        prop_assert_eq!(flat.len(), n);
        // Exact neighbor counts from first principles.
        for q in &flat {
            let expected = all
                .iter()
                .filter(|o| o.id != q.id && (o.pos.x - q.pos.x).abs() <= r_c)
                .count();
            prop_assert_eq!(q.force.x as usize, expected, "id={}", q.id);
        }
    }

    #[test]
    fn all_pairs_schedule_conserves_interactions((p, c) in all_pairs_grid(),
                                                 n in 1usize..300) {
        let params = AllPairsParams::new(p, c, n);
        let total: u64 = (0..p).map(|r| count_ops(params.program(r)).interactions).sum();
        prop_assert_eq!(total, (n as u64) * (n as u64 - 1));
    }

    #[test]
    fn cutoff_schedule_counts_each_window_pair_once(teams in 1usize..12,
                                                    c in 1usize..5,
                                                    m in 0usize..6,
                                                    sizes_seed in 0u64..100) {
        let p = teams * c;
        let grid = ProcGrid::new(p, c).unwrap();
        let window = Window1d::new(teams, m);
        prop_assume!(c <= window.len());
        // Irregular block sizes.
        let sizes: Vec<usize> = (0..teams)
            .map(|t| ((sizes_seed + t as u64 * 7) % 9) as usize)
            .collect();
        let params = CutoffParams::new(grid, window, sizes.clone());
        let total: u64 = (0..p).map(|r| count_ops(params.program(r)).interactions).sum();
        let m_eff = window.len() / 2;
        let mut want = 0u64;
        for t in 0..teams {
            for b in 0..teams {
                if (t as i64 - b as i64).unsigned_abs() as usize <= m_eff {
                    let cross = (sizes[t] * sizes[b]) as u64;
                    want += if t == b { cross - sizes[t] as u64 } else { cross };
                }
            }
        }
        prop_assert_eq!(total, want);
    }

    #[test]
    fn window_traversal_covers_offsets_exactly_once(teams in 1usize..15,
                                                    m in 0usize..7,
                                                    c in 1usize..6) {
        let window = Window1d::new(teams, m);
        prop_assume!(c <= window.len());
        let w = window.len();
        // Union over rows of first-wrap positions must cover 0..w once.
        let mut seen = vec![0usize; w];
        for k in 0..c {
            let steps = ca_nbody::cutoff::row_steps(w, c, k);
            for s in 1..=steps {
                if k + s * c < w + c {
                    seen[(k + s * c) % w] += 1;
                }
            }
        }
        prop_assert!(seen.iter().all(|&x| x == 1), "coverage {:?}", seen);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn window2d_covers_exactly_the_chebyshev_ball(
        tx in 1usize..8,
        ty in 1usize..8,
        mx in 0usize..4,
        my in 0usize..4,
    ) {
        use ca_nbody::Window2d;
        let w = Window2d::new(tx, ty, mx, my);
        let (mx, my) = w.spans();
        for t in 0..w.teams() {
            let (cx, cy) = (t % tx, t / tx);
            let mut hits = std::collections::HashSet::new();
            for j in 0..w.len() {
                if let Some(u) = w.apply_back(t, j) {
                    prop_assert!(hits.insert(u), "duplicate neighbor {u} for team {t}");
                }
            }
            for b in 0..w.teams() {
                let (bx, by) = (b % tx, b / tx);
                let inside = cx.abs_diff(bx) <= mx && cy.abs_diff(by) <= my;
                prop_assert_eq!(hits.contains(&b), inside, "t={} b={}", t, b);
            }
        }
    }

    #[test]
    fn window3d_neighbor_sets_are_consistent(
        dims in (1usize..5, 1usize..5, 1usize..5),
        spans in (0usize..3, 0usize..3, 0usize..3),
    ) {
        use ca_nbody::{Window, Window3d};
        let w = Window3d::new([dims.0, dims.1, dims.2], [spans.0, spans.1, spans.2]);
        for t in 0..w.teams() {
            for j in 0..w.len() {
                // apply and apply_back are mutually inverse where defined.
                if let Some(u) = w.apply(t, j) {
                    prop_assert_eq!(w.apply_back(u, j), Some(t));
                }
                if let Some(u) = w.apply_back(t, j) {
                    prop_assert_eq!(w.apply(u, j), Some(t));
                }
            }
            prop_assert_eq!(w.apply(t, 0), Some(t), "position 0 is self");
        }
    }

    #[test]
    fn periodic_window_traversal_counts_each_wrap_pair_once(
        teams in 1usize..10,
        c in 1usize..4,
        m in 0usize..5,
        base_size in 1usize..6,
    ) {
        use ca_nbody::schedule::{count_ops, CutoffParams};
        use ca_nbody::{Window, Window1dPeriodic};
        let p = teams * c;
        let grid = ProcGrid::new(p, c).unwrap();
        let window = Window1dPeriodic::new(teams, m);
        prop_assume!(c <= window.len());
        let sizes: Vec<usize> = (0..teams).map(|t| base_size + t % 3).collect();
        let params = CutoffParams::new(grid, window, sizes.clone());
        let total: u64 = (0..p).map(|r| count_ops(params.program(r)).interactions).sum();
        // Each team interacts with exactly window.len() teams (wrapped),
        // counted once each.
        let mut want = 0u64;
        for t in 0..teams {
            let mut seen = std::collections::HashSet::new();
            for j in 0..window.len() {
                let b = window.apply_back(t, j).unwrap();
                prop_assert!(seen.insert(b));
                let cross = (sizes[t] * sizes[b]) as u64;
                want += if b == t { cross - sizes[t] as u64 } else { cross };
            }
        }
        prop_assert_eq!(total, want);
    }

    #[test]
    fn block_distribution_roundtrip_under_reassignment(
        n in 1usize..60,
        teams in 1usize..8,
        seed in 0u64..200,
    ) {
        // Assign ids to arbitrary teams, reassign by the id rule, and
        // verify the id-block invariant holds globally.
        use ca_nbody::dist::{block_range, team_of_id};
        let _ = seed;
        let mut total = 0;
        for b in 0..teams {
            let r = block_range(n, teams, b);
            for id in r.clone() {
                prop_assert_eq!(team_of_id(n, teams, id as u64), b);
            }
            total += r.len();
        }
        prop_assert_eq!(total, n);
    }
}
