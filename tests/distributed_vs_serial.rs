//! Cross-crate integration: every distributed method must reproduce the
//! serial reference trajectory across decompositions, replication factors,
//! force laws, integrators, and boundary conditions.

use ca_nbody::{run_distributed, run_serial, Method, SimConfig};
use nbody_physics::{
    init, Boundary, Cutoff, Domain, ExplicitEuler, ForceLaw, Gravity, Integrator, Particle,
    RepulsiveInverseSquare, SemiImplicitEuler, VelocityVerlet,
};

fn max_deviation(a: &[Particle], b: &[Particle]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            assert_eq!(x.id, y.id);
            (x.pos - y.pos).norm().max((x.vel - y.vel).norm())
        })
        .fold(0.0, f64::max)
}

fn check<F, I>(cfg: &SimConfig<F, I>, initial: &[Particle], method: Method, p: usize, tol: f64)
where
    F: ForceLaw + Sync,
    I: Integrator + Sync,
{
    let want = run_serial(cfg, initial);
    let got = run_distributed(cfg, method, p, initial);
    let dev = max_deviation(&got.particles, &want);
    assert!(
        dev <= tol,
        "{method:?} on p={p}: deviation {dev:.3e} > {tol:.0e}"
    );
}

#[test]
fn all_pairs_methods_match_serial_reflective() {
    let cfg = SimConfig {
        law: RepulsiveInverseSquare {
            strength: 2e-3,
            softening: 1e-3,
        },
        integrator: SemiImplicitEuler,
        domain: Domain::unit(),
        boundary: Boundary::Reflective,
        dt: 0.01,
        steps: 8,
    };
    let initial = init::uniform(36, &cfg.domain, 1);
    for (method, p) in [
        (Method::CaAllPairs { c: 1 }, 6),
        (Method::CaAllPairs { c: 2 }, 4),
        (Method::CaAllPairs { c: 2 }, 16),
        (Method::CaAllPairs { c: 3 }, 9),
        (Method::ParticleRing, 5),
        (Method::NaiveAllgather, 7),
        (Method::ForceDecomposition, 4),
        (Method::ForceDecomposition, 16),
    ] {
        check(&cfg, &initial, method, p, 1e-9);
    }
}

#[test]
fn all_pairs_periodic_boundary_minimum_image() {
    let cfg = SimConfig {
        law: RepulsiveInverseSquare {
            strength: 1e-3,
            softening: 1e-3,
        },
        integrator: SemiImplicitEuler,
        domain: Domain::unit(),
        boundary: Boundary::Periodic,
        dt: 0.01,
        steps: 6,
    };
    let initial = init::uniform(30, &cfg.domain, 8);
    for (method, p) in [
        (Method::CaAllPairs { c: 2 }, 8),
        (Method::ParticleRing, 6),
        (Method::NaiveAllgather, 4),
    ] {
        check(&cfg, &initial, method, p, 1e-9);
    }
}

#[test]
fn cutoff_methods_match_serial() {
    let cfg = SimConfig {
        law: Cutoff::new(
            RepulsiveInverseSquare {
                strength: 2e-3,
                softening: 1e-3,
            },
            0.25,
        ),
        integrator: SemiImplicitEuler,
        domain: Domain::unit(),
        boundary: Boundary::Reflective,
        dt: 0.01,
        steps: 6,
    };
    let initial = init::uniform(48, &cfg.domain, 5);
    for (method, p) in [
        (Method::Ca1dCutoff { c: 1 }, 6),
        (Method::Ca1dCutoff { c: 2 }, 12),
        (Method::Ca1dCutoff { c: 3 }, 9),
        (Method::Ca2dCutoff { c: 1 }, 6),
        (Method::Ca2dCutoff { c: 2 }, 12),
        (Method::SpatialHalo1d, 8),
        (Method::SpatialHalo2d, 6),
    ] {
        check(&cfg, &initial, method, p, 1e-9);
    }
}

#[test]
fn gravity_open_boundary_matches_serial() {
    let cfg = SimConfig {
        law: Gravity {
            g: 1e-3,
            softening: 0.05,
        },
        integrator: VelocityVerlet,
        domain: Domain::square(4.0),
        boundary: Boundary::Open,
        dt: 0.005,
        steps: 10,
    };
    let initial = init::gaussian_clusters(32, &cfg.domain, 2, 0.3, 11);
    check(&cfg, &initial, Method::CaAllPairs { c: 2 }, 8, 1e-9);
    check(&cfg, &initial, Method::ForceDecomposition, 9, 1e-9);
}

#[test]
fn integrators_agree_across_decompositions() {
    // Each integrator must produce the same trajectory distributed as
    // serially, independently of the decomposition's reduction order.
    let initial = init::uniform(24, &Domain::unit(), 21);
    macro_rules! run_with {
        ($integ:expr) => {{
            let cfg = SimConfig {
                law: RepulsiveInverseSquare {
                    strength: 1e-3,
                    softening: 1e-3,
                },
                integrator: $integ,
                domain: Domain::unit(),
                boundary: Boundary::Reflective,
                dt: 0.01,
                steps: 5,
            };
            check(&cfg, &initial, Method::CaAllPairs { c: 2 }, 8, 1e-9);
        }};
    }
    run_with!(ExplicitEuler);
    run_with!(SemiImplicitEuler);
    run_with!(VelocityVerlet);
}

#[test]
fn single_rank_degenerate_cases() {
    let cfg = SimConfig {
        law: RepulsiveInverseSquare::default(),
        integrator: SemiImplicitEuler,
        domain: Domain::unit(),
        boundary: Boundary::Reflective,
        dt: 0.01,
        steps: 3,
    };
    let initial = init::uniform(10, &cfg.domain, 2);
    check(&cfg, &initial, Method::CaAllPairs { c: 1 }, 1, 0.0);
    check(&cfg, &initial, Method::ParticleRing, 1, 0.0);
    check(&cfg, &initial, Method::ForceDecomposition, 1, 0.0);
}

#[test]
fn more_ranks_than_particles() {
    // Empty blocks everywhere: the protocols must still complete.
    let cfg = SimConfig {
        law: RepulsiveInverseSquare::default(),
        integrator: SemiImplicitEuler,
        domain: Domain::unit(),
        boundary: Boundary::Reflective,
        dt: 0.01,
        steps: 2,
    };
    let initial = init::uniform(5, &cfg.domain, 3);
    check(&cfg, &initial, Method::CaAllPairs { c: 2 }, 16, 1e-12);
    let cutoff_cfg = SimConfig {
        law: Cutoff::new(RepulsiveInverseSquare::default(), 0.3),
        integrator: SemiImplicitEuler,
        domain: Domain::unit(),
        boundary: Boundary::Reflective,
        dt: 0.01,
        steps: 2,
    };
    check(&cutoff_cfg, &initial, Method::Ca1dCutoff { c: 2 }, 8, 1e-12);
}

#[test]
fn cutoff_methods_match_serial_periodic() {
    // Extension beyond the paper: periodic boundaries with wrap-around
    // windows. The serial reference uses minimum-image displacements, so
    // any missed or doubled wrap pair shows up immediately.
    let cfg = SimConfig {
        law: Cutoff::new(
            RepulsiveInverseSquare {
                strength: 2e-3,
                softening: 1e-3,
            },
            0.2,
        ),
        integrator: SemiImplicitEuler,
        domain: Domain::unit(),
        boundary: Boundary::Periodic,
        dt: 0.01,
        steps: 5,
    };
    let initial = init::uniform(48, &cfg.domain, 33);
    for (method, p) in [
        (Method::Ca1dCutoff { c: 1 }, 6),
        (Method::Ca1dCutoff { c: 2 }, 12),
        (Method::Ca2dCutoff { c: 1 }, 9),
        (Method::Ca2dCutoff { c: 2 }, 8),
        (Method::SpatialHalo1d, 8),
        (Method::SpatialHalo2d, 9),
    ] {
        check(&cfg, &initial, method, p, 1e-9);
    }
}

#[test]
fn periodic_cutoff_counts_wrap_pairs_exactly() {
    use nbody_physics::Counting;
    // A large cutoff so wrap interactions matter everywhere.
    let cfg = SimConfig {
        law: Cutoff::new(Counting, 0.4),
        integrator: SemiImplicitEuler,
        domain: Domain::unit(),
        boundary: Boundary::Periodic,
        dt: 0.0, // counting "forces" should not move particles far
        steps: 1,
    };
    let initial = init::uniform(40, &cfg.domain, 12);
    let want = run_serial(&cfg, &initial);
    for p in [4usize, 8, 12] {
        let got = run_distributed(&cfg, Method::Ca1dCutoff { c: 2 }, p, &initial);
        let dev = max_deviation(&got.particles, &want);
        assert!(dev == 0.0, "p={p}: deviation {dev}");
    }
}

#[test]
fn midpoint_method_matches_serial_both_boundaries() {
    for boundary in [Boundary::Reflective, Boundary::Periodic] {
        let cfg = SimConfig {
            law: Cutoff::new(
                RepulsiveInverseSquare {
                    strength: 2e-3,
                    softening: 1e-3,
                },
                0.25,
            ),
            integrator: SemiImplicitEuler,
            domain: Domain::unit(),
            boundary,
            dt: 0.01,
            steps: 5,
        };
        let initial = init::uniform(44, &cfg.domain, 19);
        for (method, p) in [
            (Method::Midpoint1d, 6),
            (Method::Midpoint1d, 8),
            (Method::Midpoint2d, 8),
            (Method::Midpoint2d, 9),
        ] {
            check(&cfg, &initial, method, p, 1e-9);
        }
    }
}

#[test]
fn symmetric_half_ring_matches_serial_trajectories() {
    let cfg = SimConfig {
        law: RepulsiveInverseSquare {
            strength: 2e-3,
            softening: 1e-3,
        },
        integrator: SemiImplicitEuler,
        domain: Domain::unit(),
        boundary: Boundary::Reflective,
        dt: 0.01,
        steps: 8,
    };
    let initial = init::uniform(30, &cfg.domain, 44);
    for p in [2usize, 4, 5, 8] {
        check(&cfg, &initial, Method::ParticleRingSymmetric, p, 1e-9);
    }
}
