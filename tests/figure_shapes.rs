//! The paper's qualitative findings must hold in the simulated experiments
//! at reduced scale — these are the acceptance criteria of EXPERIMENTS.md,
//! enforced in CI.

use nbody_bench::{
    run_all_pairs_point, run_allgather_point, run_cutoff_point, valid_all_pairs_cs,
};
use nbody_netsim::{hopper, intrepid};

#[test]
fn fig2_shape_communication_drops_then_interior_optimum() {
    // Fig. 2b shape at 1/16 scale: comm decreases from c=1, and the best
    // total sits strictly inside the sweep once reduce saturation bites.
    let m = hopper();
    let (p, n) = (1536, 12_288);
    let cs = valid_all_pairs_cs(p, &[1, 2, 4, 8, 16]);
    let rows: Vec<_> = cs
        .iter()
        .map(|&c| run_all_pairs_point(&m, p, n, c))
        .collect();

    // Monotone comm decrease for small c.
    assert!(
        rows[1].comm() < rows[0].comm(),
        "c=2 must communicate less than c=1"
    );
    // Computation is essentially constant across c.
    for r in &rows {
        let rel = (r.compute - rows[0].compute).abs() / rows[0].compute;
        assert!(rel < 0.01, "compute varies with c: {rel}");
    }
    // The best total time is at an interior c (not c=1, not the max).
    let best = rows
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.makespan.total_cmp(&b.1.makespan))
        .unwrap()
        .0;
    assert!(best > 0, "replication must pay off");
    assert!(best < rows.len() - 1, "max replication must not win");
}

#[test]
fn fig2_shape_shift_drops_quadratically_reduce_grows() {
    let m = hopper();
    let (p, n) = (1536, 12_288);
    let r1 = run_all_pairs_point(&m, p, n, 1);
    let r4 = run_all_pairs_point(&m, p, n, 4);
    // S drops by ~c^2, W by ~c: shift time should fall superlinearly.
    assert!(
        r4.shift < r1.shift / 3.0,
        "shift c=4 {:.6} vs c=1 {:.6}",
        r4.shift,
        r1.shift
    );
    // Reduce time grows with c (it does not exist at c=1).
    assert_eq!(r1.reduce, 0.0);
    assert!(r4.reduce > 0.0);
}

#[test]
fn fig2cd_shape_tree_helps_naive_but_ca_wins() {
    let m = intrepid();
    let (p, n) = (512, 2_048);
    let tree = run_allgather_point(&m, p, n, true);
    let no_tree = run_allgather_point(&m, p, n, false);
    assert!(
        tree.makespan < no_tree.makespan / 2.0,
        "the hardware tree must help the naive implementation substantially"
    );
    let best_ca = valid_all_pairs_cs(p, &[1, 2, 4, 8, 16])
        .iter()
        .map(|&c| run_all_pairs_point(&m, p, n, c).makespan)
        .fold(f64::INFINITY, f64::min);
    assert!(
        best_ca < tree.makespan,
        "the CA algorithm on the torus must beat the hardware-assisted naive run \
         ({best_ca} vs {})",
        tree.makespan
    );
    // §III.C: vs the torus-only naive run, communication avoidance removes
    // the vast majority of communication time (paper: 99.5%).
    let best_comm = valid_all_pairs_cs(p, &[1, 2, 4, 8, 16])
        .iter()
        .map(|&c| run_all_pairs_point(&m, p, n, c).comm())
        .fold(f64::INFINITY, f64::min);
    assert!(
        best_comm < 0.1 * no_tree.comm(),
        "expected >90% comm reduction vs naive torus run"
    );
}

#[test]
fn fig3_shape_efficiency_crossover() {
    // Small machine: c=1 fine. Large machine: replication wins and stays
    // near-perfect.
    let m = hopper();
    let n = 12_288;
    let small = 96;
    let large = 1_536;
    let e = |p: usize, c: usize| run_all_pairs_point(&m, p, n, c).efficiency(p);
    assert!(e(small, 1) > 0.95, "small machine, c=1 is nearly ideal");
    let e1 = e(large, 1);
    let e4 = e(large, 4);
    assert!(
        e4 > e1,
        "at {large} cores replication must beat c=1 ({e4:.3} vs {e1:.3})"
    );
    assert!(e4 > 0.85, "best-c strong scaling stays near-perfect: {e4:.3}");
}

#[test]
fn fig6_shape_cutoff_interior_optimum_and_shift_stagnation() {
    let m = hopper();
    let (p, n) = (1536, 12_288);
    let rows: Vec<_> = [1usize, 2, 4, 8, 16]
        .iter()
        .filter_map(|&c| run_cutoff_point(&m, 1, p, n, c, 0.25).map(|r| (c, r)))
        .collect();
    assert!(rows.len() >= 4);
    // Comm decreases initially.
    assert!(rows[1].1.comm() < rows[0].1.comm());
    // Reduce grows "considerably" for large c (§IV.D).
    let last = &rows.last().unwrap().1;
    assert!(last.reduce > rows[1].1.reduce * 4.0);
    // Interior optimum.
    let best = rows
        .iter()
        .enumerate()
        .min_by(|a, b| a.1 .1.makespan.total_cmp(&b.1 .1.makespan))
        .unwrap()
        .0;
    assert!(best > 0 && best < rows.len() - 1, "best index {best}");
    // Re-assignment cost is present but small.
    for (_, r) in &rows {
        assert!(r.reassign > 0.0);
        assert!(r.reassign < 0.2 * r.makespan);
    }
}

#[test]
fn fig7_shape_best_replication_roughly_doubles_c1_efficiency() {
    let m = hopper();
    let n = 12_288;
    let p = 1_536;
    let e1 = run_cutoff_point(&m, 1, p, n, 1, 0.25).unwrap().efficiency(p);
    let best = [2usize, 4, 8, 16]
        .iter()
        .filter_map(|&c| run_cutoff_point(&m, 1, p, n, c, 0.25))
        .map(|r| r.efficiency(p))
        .fold(0.0, f64::max);
    assert!(
        best > 1.4 * e1,
        "best replication should far exceed c=1 at scale ({best:.3} vs {e1:.3})"
    );
}

#[test]
fn fig7_shape_largest_c_never_best_2d() {
    let m = intrepid();
    let n = 16_384;
    let p = 2_048;
    let effs: Vec<(usize, f64)> = [1usize, 4, 16, 64]
        .iter()
        .filter_map(|&c| run_cutoff_point(&m, 2, p, n, c, 0.25).map(|r| (c, r.efficiency(p))))
        .collect();
    assert!(effs.len() >= 3);
    let (largest_c, largest_eff) = *effs.last().unwrap();
    let best = effs.iter().cloned().fold((0, 0.0), |acc, x| {
        if x.1 > acc.1 {
            x
        } else {
            acc
        }
    });
    assert_ne!(
        best.0, largest_c,
        "the largest replication factor never gives the best results (§IV.D): {effs:?}"
    );
    assert!(largest_eff < best.1);
}
