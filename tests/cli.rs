//! End-to-end tests of the `ca-nbody-repro` command-line interface.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ca-nbody-repro"))
}

#[test]
fn verify_subcommand_passes_for_default_config() {
    let out = cli()
        .args(["verify", "n=128", "p=4", "c=2", "steps=5"])
        .output()
        .expect("failed to launch CLI");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "stdout: {stdout}");
    assert!(stdout.contains("VERIFY OK"), "{stdout}");
}

#[test]
fn verify_covers_every_method() {
    for method in [
        "ca",
        "ring",
        "ring-symmetric",
        "allgather",
        "ca-cutoff-1d",
        "ca-cutoff-2d",
        "halo-1d",
        "halo-2d",
        "midpoint-1d",
        "midpoint-2d",
    ] {
        let out = cli()
            .args([
                "verify",
                &format!("method={method}"),
                "n=64",
                "p=4",
                "c=2",
                "steps=3",
            ])
            .output()
            .expect("failed to launch CLI");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            out.status.success() && stdout.contains("VERIFY OK"),
            "method {method}: {stdout}\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn force_decomp_requires_square_p() {
    let out = cli()
        .args(["verify", "method=force-decomp", "n=32", "p=9", "steps=2"])
        .output()
        .expect("failed to launch CLI");
    assert!(out.status.success());
}

#[test]
fn autotune_subcommand_reports_best_c() {
    let out = cli()
        .args(["autotune", "p=256", "n=2048"])
        .output()
        .expect("failed to launch CLI");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success());
    assert!(stdout.contains("<-- best"), "{stdout}");
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let out = cli().arg("frobnicate").output().expect("launch");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn unknown_method_fails() {
    let out = cli()
        .args(["run", "method=quantum"])
        .output()
        .expect("launch");
    assert!(!out.status.success());
}
