//! End-to-end tests of the `ca-nbody-repro` command-line interface.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ca-nbody-repro"))
}

#[test]
fn verify_subcommand_passes_for_default_config() {
    let out = cli()
        .args(["verify", "n=128", "p=4", "c=2", "steps=5"])
        .output()
        .expect("failed to launch CLI");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "stdout: {stdout}");
    assert!(stdout.contains("VERIFY OK"), "{stdout}");
}

#[test]
fn verify_covers_every_method() {
    for method in [
        "ca",
        "ring",
        "ring-symmetric",
        "allgather",
        "ca-cutoff-1d",
        "ca-cutoff-2d",
        "halo-1d",
        "halo-2d",
        "midpoint-1d",
        "midpoint-2d",
    ] {
        let out = cli()
            .args([
                "verify",
                &format!("method={method}"),
                "n=64",
                "p=4",
                "c=2",
                "steps=3",
            ])
            .output()
            .expect("failed to launch CLI");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            out.status.success() && stdout.contains("VERIFY OK"),
            "method {method}: {stdout}\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn force_decomp_requires_square_p() {
    let out = cli()
        .args(["verify", "method=force-decomp", "n=32", "p=9", "steps=2"])
        .output()
        .expect("failed to launch CLI");
    assert!(out.status.success());
}

#[test]
fn autotune_subcommand_reports_best_c() {
    let out = cli()
        .args(["autotune", "p=256", "n=2048"])
        .output()
        .expect("failed to launch CLI");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success());
    assert!(stdout.contains("<-- best"), "{stdout}");
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let out = cli().arg("frobnicate").output().expect("launch");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn unknown_method_fails() {
    let out = cli()
        .args(["run", "method=quantum"])
        .output()
        .expect("launch");
    assert!(!out.status.success());
}

#[test]
fn run_emits_single_line_json_summary() {
    let out = cli()
        .args(["run", "n=64", "p=4", "c=2", "steps=2"])
        .output()
        .expect("launch");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let last = stdout.lines().last().expect("no output");
    let doc = nbody_trace::Json::parse(last).expect("last line is not JSON");
    assert_eq!(doc.get("cmd").unwrap().as_str(), Some("run"));
    assert_eq!(doc.get("n").unwrap().as_f64(), Some(64.0));
    assert_eq!(doc.get("p").unwrap().as_f64(), Some(4.0));
    assert!(doc.get("elapsed_secs").unwrap().as_f64().unwrap() > 0.0);
}

#[test]
fn scale_emits_single_line_json_summary() {
    let out = cli()
        .args(["scale", "n=4096"])
        .output()
        .expect("launch");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let last = stdout.lines().last().expect("no output");
    let doc = nbody_trace::Json::parse(last).expect("last line is not JSON");
    assert_eq!(doc.get("cmd").unwrap().as_str(), Some("scale"));
    let rows = doc.get("rows").unwrap().as_array().unwrap();
    assert_eq!(rows.len(), 5);
    // Every row reports per-rank traffic alongside efficiency: one entry
    // per c value, null where the grid is invalid.
    for row in rows {
        let n_c = row.get("efficiency").unwrap().as_array().unwrap().len();
        let msgs = row.get("messages_per_rank").unwrap().as_array().unwrap();
        let words = row.get("words_per_rank").unwrap().as_array().unwrap();
        assert_eq!(msgs.len(), n_c);
        assert_eq!(words.len(), n_c);
        // c = 1 is always valid: a ring of p-1 shift sends moving ~n words.
        assert!(msgs[0].as_f64().unwrap() > 0.0, "{last}");
        assert!(words[0].as_f64().unwrap() > 0.0, "{last}");
    }
}

#[test]
fn trace_flag_writes_valid_chrome_trace() {
    let dir = std::env::temp_dir().join("ca_nbody_cli_trace_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.json");
    let out = cli()
        .args([
            "run",
            "method=ca-cutoff-1d",
            "n=256",
            "p=8",
            "c=2",
            "steps=3",
            &format!("--trace={}", path.display()),
        ])
        .output()
        .expect("launch");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&path).expect("trace file not written");
    let trace = nbody_trace::ExecutionTrace::parse(&text).expect("invalid trace");
    assert_eq!(trace.ranks, 8);
    // The cutoff method must leave a window for each phase it drives.
    use nbody_trace::Phase;
    let present = trace.phases_present();
    for want in [
        Phase::Broadcast,
        Phase::Shift,
        Phase::Reduce,
        Phase::Reassign,
        Phase::Other,
    ] {
        assert!(present.contains(&want), "missing {want:?} in {present:?}");
    }
    // Driver sections carry per-step spans.
    assert_eq!(trace.step_reports().len(), 3);
    std::fs::remove_file(&path).ok();
}

#[test]
fn report_subcommand_prints_breakdown_table() {
    let dir = std::env::temp_dir().join("ca_nbody_cli_report_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.jsonl");
    let run = cli()
        .args([
            "run",
            "n=128",
            "p=4",
            "c=2",
            "steps=2",
            &format!("--trace={}", path.display()),
        ])
        .output()
        .expect("launch");
    assert!(run.status.success());
    let out = cli()
        .args(["report", path.to_str().unwrap()])
        .output()
        .expect("launch");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("per-phase wall-clock"), "{stdout}");
    assert!(stdout.contains("shift"), "{stdout}");
    assert!(stdout.contains("phase sum"), "{stdout}");
    assert!(stdout.contains("per-step driver sections"), "{stdout}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn report_rejects_garbage_input() {
    let dir = std::env::temp_dir().join("ca_nbody_cli_badreport_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("not_a_trace.json");
    std::fs::write(&path, "hello, world").unwrap();
    let out = cli()
        .args(["report", path.to_str().unwrap()])
        .output()
        .expect("launch");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot parse"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn audit_prints_verdict_table_and_json_summary() {
    // `--key value` form, as documented: shift words must fall as c grows
    // and every configuration must pass the default ceilings.
    let out = cli()
        .args(["audit", "--n", "256", "--p", "16", "--steps", "1"])
        .output()
        .expect("launch");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    for want in ["latency   S:", "bandwidth W:", "bound", "PASS", "shift"] {
        assert!(stdout.contains(want), "missing {want:?} in {stdout}");
    }
    let last = stdout.lines().last().unwrap();
    let doc = nbody_trace::Json::parse(last).expect("last line is not JSON");
    assert_eq!(doc.get("cmd").unwrap().as_str(), Some("audit"));
    assert_eq!(doc.get("pass").unwrap(), &nbody_trace::Json::Bool(true));
    let rows = doc.get("rows").unwrap().as_array().unwrap();
    // p = 16 sweeps c = 1, 2, 4.
    assert_eq!(rows.len(), 3);
    let mut last_shift = f64::INFINITY;
    for row in rows {
        assert_eq!(row.get("pass").unwrap(), &nbody_trace::Json::Bool(true));
        let s = row.get("s_factor").unwrap().as_f64().unwrap();
        let w = row.get("w_factor").unwrap().as_f64().unwrap();
        assert!(s.is_finite() && s > 0.0, "{last}");
        assert!(w.is_finite() && w > 0.0, "{last}");
        let shift = row.get("shift_words").unwrap().as_f64().unwrap();
        assert!(
            shift < last_shift,
            "shift words must fall as c grows: {last}"
        );
        last_shift = shift;
    }
}

#[test]
fn audit_cutoff_variant_audits_against_eq3() {
    // The cutoff constant factors are scale-invariant and larger than the
    // all-pairs defaults (the Eq. 3 bound and the measured traffic both
    // grow linearly in n), so give this variant its own ceilings — which
    // also exercises the --baseline happy path.
    let dir = std::env::temp_dir().join("ca_nbody_cli_audit_cutoff_test");
    std::fs::create_dir_all(&dir).unwrap();
    let baseline = dir.join("loose.json");
    std::fs::write(
        &baseline,
        "{\"latency_factor_ceiling\": 1000.0, \"bandwidth_factor_ceiling\": 1000.0}",
    )
    .unwrap();
    let out = cli()
        .args([
            "audit",
            "n=256",
            "p=8",
            "cutoff=0.25",
            "c=2",
            &format!("--baseline={}", baseline.display()),
        ])
        .output()
        .expect("launch");
    std::fs::remove_file(&baseline).ok();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("cutoff-1d"), "{stdout}");
    let last = stdout.lines().last().unwrap();
    let doc = nbody_trace::Json::parse(last).unwrap();
    assert_eq!(doc.get("algorithm").unwrap().as_str(), Some("cutoff-1d"));
}

#[test]
fn audit_reads_ceilings_from_baseline_and_fails_when_exceeded() {
    let dir = std::env::temp_dir().join("ca_nbody_cli_audit_baseline_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("tight.json");
    // Impossible ceilings: every measured factor exceeds them.
    std::fs::write(
        &path,
        "{\"latency_factor_ceiling\": 0.001, \"bandwidth_factor_ceiling\": 0.001}",
    )
    .unwrap();
    let out = cli()
        .args([
            "audit",
            "n=128",
            "p=4",
            &format!("--baseline={}", path.display()),
        ])
        .output()
        .expect("launch");
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("FAIL"), "{stdout}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn audit_rejects_missing_and_malformed_baseline_with_one_line_error() {
    // Missing file: a clear one-line error, not a panic.
    let out = cli()
        .args(["audit", "n=64", "p=4", "--baseline=/no/such/file.json"])
        .output()
        .expect("launch");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot read"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");

    // Malformed file: same contract.
    let dir = std::env::temp_dir().join("ca_nbody_cli_audit_garbage_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("garbage.json");
    std::fs::write(&path, "hello, world").unwrap();
    let out = cli()
        .args([
            "audit",
            "n=64",
            "p=4",
            &format!("--baseline={}", path.display()),
        ])
        .output()
        .expect("launch");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot parse"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn audit_rejects_invalid_replication_factor() {
    let out = cli()
        .args(["audit", "n=64", "p=16", "c=3"])
        .output()
        .expect("launch");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("not usable"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
}

#[test]
fn audit_writes_csv_and_json_reports() {
    let dir = std::env::temp_dir().join("ca_nbody_cli_audit_out_test");
    std::fs::create_dir_all(&dir).unwrap();
    for ext in ["csv", "json"] {
        let path = dir.join(format!("audit.{ext}"));
        let out = cli()
            .args([
                "audit",
                "n=128",
                "p=4",
                &format!("--out={}", path.display()),
            ])
            .output()
            .expect("launch");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let body = std::fs::read_to_string(&path).expect("report not written");
        if ext == "csv" {
            assert!(body.starts_with("algorithm,"), "{body}");
        } else {
            let doc = nbody_trace::Json::parse(&body).expect("invalid JSON report");
            assert!(!doc.get("reports").unwrap().as_array().unwrap().is_empty());
        }
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn metrics_flag_round_trips_through_json_and_prometheus() {
    let dir = std::env::temp_dir().join("ca_nbody_cli_metrics_test");
    std::fs::create_dir_all(&dir).unwrap();
    let json_path = dir.join("metrics.json");
    let prom_path = dir.join("metrics.prom");
    for path in [&json_path, &prom_path] {
        let out = cli()
            .args([
                "run",
                "n=128",
                "p=4",
                "c=2",
                "steps=2",
                &format!("--metrics={}", path.display()),
            ])
            .output()
            .expect("launch");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    // Both exports must parse back; each round-trips losslessly through
    // the other format in memory. (The two runs themselves are not
    // bit-identical: compute_nanos is wall-clock kernel time.)
    let json_text = std::fs::read_to_string(&json_path).unwrap();
    let doc = nbody_trace::Json::parse(&json_text).unwrap();
    let from_json = nbody_metrics::MetricsSnapshot::from_json(&doc).expect("JSON round-trip");
    let prom_text = std::fs::read_to_string(&prom_path).unwrap();
    let from_prom =
        nbody_metrics::MetricsSnapshot::parse_prometheus(&prom_text).expect("prom round-trip");
    assert_eq!(
        nbody_metrics::MetricsSnapshot::parse_prometheus(&from_json.to_prometheus()).unwrap(),
        from_json
    );
    let prom_doc = nbody_trace::Json::parse(&from_prom.to_json().to_string()).unwrap();
    assert_eq!(
        nbody_metrics::MetricsSnapshot::from_json(&prom_doc).unwrap(),
        from_prom
    );
    for snap in [&from_json, &from_prom] {
        assert_eq!(snap.ranks.len(), 4);
        assert!(
            snap.sum_counter("comm_send_messages", Some(nbody_trace::Phase::Shift)) > 0,
            "{json_text}"
        );
        // The kernel meter populates the compute side of the snapshot.
        assert!(snap.sum_counter("compute_flops", None) > 0);
        assert!(snap.sum_counter("compute_nanos", None) > 0);
    }
    std::fs::remove_file(&json_path).ok();
    std::fs::remove_file(&prom_path).ok();
}

#[test]
fn profile_flag_prints_breakdown_after_run() {
    let out = cli()
        .args(["run", "n=128", "p=4", "c=2", "steps=2", "--profile"])
        .output()
        .expect("launch");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("per-phase wall-clock"), "{stdout}");
    // The summary line carries the trace metadata too.
    let last = stdout.lines().last().unwrap();
    let doc = nbody_trace::Json::parse(last).unwrap();
    assert!(doc.get("trace_spans").unwrap().as_f64().unwrap() > 0.0);
}

#[test]
fn verify_with_injected_kill_recovers_and_passes() {
    let out = cli()
        .args([
            "verify", "n=96", "p=8", "c=2", "steps=2",
            "--faults=kill:5@1", "fault-timeout-ms=400",
        ])
        .output()
        .expect("launch");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success() && stdout.contains("VERIFY OK"),
        "{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let last = stdout.lines().last().unwrap();
    let doc = nbody_trace::Json::parse(last).unwrap();
    // Recovery happened, and the distributed result still matched serial
    // exactly (max_deviation is bitwise zero).
    assert!(
        matches!(doc.get("recovered"), Some(nbody_trace::Json::Bool(true))),
        "{last}"
    );
    assert_eq!(doc.get("max_attempts").unwrap().as_f64(), Some(2.0));
    assert_eq!(doc.get("max_deviation").unwrap().as_f64(), Some(0.0));
    assert!(doc.get("recovery_bytes_total").unwrap().as_f64().unwrap() > 0.0);
}

#[test]
fn run_with_total_loss_fails_cleanly() {
    // Every rank killed in the same step: nothing survives to shrink
    // onto, so this is the one fault class that must still fail.
    let out = cli()
        .args([
            "run", "n=64", "p=4", "c=1", "steps=1",
            "--faults=kill:0@1,kill:1@1,kill:2@1,kill:3@1",
            "fault-timeout-ms=300",
        ])
        .output()
        .expect("launch");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unrecoverable"), "{stderr}");
}

#[test]
fn run_survives_unreplicated_kill_by_shrinking() {
    // c=1 leaves no replica, but a single column loss now degrades to a
    // smaller world instead of failing: the run completes on 3 ranks and
    // reports what it shed.
    let out = cli()
        .args([
            "run", "n=64", "p=4", "c=1", "steps=1",
            "--faults=kill:2@1", "fault-timeout-ms=300",
        ])
        .output()
        .expect("launch");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = nbody_trace::Json::parse(stdout.lines().last().unwrap()).unwrap();
    assert_eq!(doc.get("shrinks").unwrap().as_f64(), Some(1.0), "{stdout}");
    assert_eq!(doc.get("final_ranks").unwrap().as_f64(), Some(3.0), "{stdout}");
    assert!(
        doc.get("lost_particles").unwrap().as_f64().unwrap() > 0.0,
        "{stdout}"
    );
}

#[test]
fn faults_flag_rejects_bad_specs_and_non_ca_methods() {
    let out = cli()
        .args(["run", "n=32", "p=4", "--faults=explode:1@2"])
        .output()
        .expect("launch");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("invalid --faults"));

    let out = cli()
        .args(["run", "n=32", "p=4", "method=ring", "--faults=drop:1@1"])
        .output()
        .expect("launch");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("requires a CA method"));
}

#[test]
fn chaos_subcommand_sweeps_and_gates_against_baseline() {
    // A narrow sweep (p=4, one timestep) keeps this CI-friendly; the
    // kill schedule still covers every rank at every pipeline step.
    let out = cli()
        .args([
            "chaos", "n=64", "p=4", "c=2", "steps=1",
            "fault-timeout-ms=250",
            "--baseline=bench_results/chaos_baseline.json",
        ])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("launch");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let last = stdout.lines().last().unwrap();
    let doc = nbody_trace::Json::parse(last).unwrap();
    assert!(
        matches!(doc.get("pass"), Some(nbody_trace::Json::Bool(true))),
        "{last}"
    );
    assert!(doc.get("kills_fired").unwrap().as_f64().unwrap() > 0.0);
    assert_eq!(doc.get("failures").unwrap().as_f64(), Some(0.0));
}

#[test]
fn chaos_rejects_configs_without_a_surviving_replica() {
    let out = cli()
        .args(["chaos", "n=32", "p=4", "c=1"])
        .output()
        .expect("launch");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("c >= 2"));
}

/// Run a small traced all-pairs execution and return the trace/metrics
/// paths inside `dir`.
fn traced_run(dir: &std::path::Path, p: usize, c: usize) -> (String, String) {
    std::fs::create_dir_all(dir).unwrap();
    let trace = dir.join("trace.jsonl").display().to_string();
    let metrics = dir.join("metrics.json").display().to_string();
    let out = cli()
        .args([
            "run",
            "n=128",
            &format!("p={p}"),
            &format!("c={c}"),
            "steps=3",
            &format!("--trace={trace}"),
            &format!("--metrics={metrics}"),
        ])
        .output()
        .expect("launch");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    (trace, metrics)
}

#[test]
fn analyze_reports_critical_path_imbalance_and_heatmap() {
    let dir = std::env::temp_dir().join("ca_nbody_cli_analyze_test");
    let (trace, metrics) = traced_run(&dir, 8, 2);
    let csv = dir.join("critical.csv").display().to_string();
    let json = dir.join("analysis.json").display().to_string();
    let out = cli()
        .args([
            "analyze",
            &trace,
            &format!("--metrics={metrics}"),
            "c=2",
            &format!("--csv={csv}"),
            &format!("--json={json}"),
        ])
        .output()
        .expect("launch");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Per-step critical path, per-phase imbalance, stragglers, heat-map.
    assert!(stdout.contains("critical path (per timestep)"), "{stdout}");
    assert!(stdout.contains("phase imbalance"), "{stdout}");
    assert!(stdout.contains("stragglers"), "{stdout}");
    assert!(stdout.contains("grid heat-map (4 teams x c = 2 rows)"), "{stdout}");

    // CSV export: one row per timestep plus header.
    let csv_body = std::fs::read_to_string(&csv).unwrap();
    assert!(csv_body.starts_with("step,makespan_secs,critical_rank"), "{csv_body}");
    assert_eq!(csv_body.lines().count(), 4, "{csv_body}");

    // JSON export parses and covers all three steps; the heat-map planes
    // carry real traffic (the skew makes non-leader rows send bytes).
    let doc = nbody_trace::Json::parse(&std::fs::read_to_string(&json).unwrap()).unwrap();
    let steps = doc.get("critical_path").unwrap().as_array().unwrap();
    assert_eq!(steps.len(), 3);
    for s in steps {
        assert!(s.get("makespan_secs").unwrap().as_f64().unwrap() > 0.0);
    }
    let send = doc
        .get("heatmap")
        .unwrap()
        .get("send_bytes")
        .unwrap()
        .as_array()
        .unwrap();
    assert_eq!(send.len(), 8);
    assert!(send.iter().any(|v| v.as_f64().unwrap() > 0.0));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn analyze_handles_single_rank_runs() {
    // p = 1, c = 1: no communication spans at all.
    let dir = std::env::temp_dir().join("ca_nbody_cli_analyze_p1_test");
    let (trace, metrics) = traced_run(&dir, 1, 1);
    let out = cli()
        .args(["analyze", &trace, &format!("--metrics={metrics}")])
        .output()
        .expect("launch");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{stdout}\n{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
    assert!(stdout.contains("critical path (per timestep)"), "{stdout}");
    // The sole rank is critical in every step and never waits on a peer.
    assert!(stdout.contains("rank 0"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn analyze_rejects_empty_and_truncated_traces_with_diagnostics() {
    let dir = std::env::temp_dir().join("ca_nbody_cli_analyze_bad_test");
    std::fs::create_dir_all(&dir).unwrap();

    // Empty trace file: a one-line error, not a panic.
    let empty = dir.join("empty.jsonl");
    std::fs::write(&empty, "").unwrap();
    let out = cli()
        .args(["analyze", empty.to_str().unwrap()])
        .output()
        .expect("launch");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no spans"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");

    // Truncated JSONL: the diagnostic names the offending line.
    let truncated = dir.join("truncated.jsonl");
    std::fs::write(
        &truncated,
        "{\"rank\":0,\"kind\":\"phase\",\"phase\":\"shift\",\"start\":0,\"end\":1}\n\
         {\"rank\":1,\"kind\":\"ph",
    )
    .unwrap();
    let out = cli()
        .args(["analyze", truncated.to_str().unwrap()])
        .output()
        .expect("launch");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line 2"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn run_summary_includes_imbalance_and_critical_path_when_traced() {
    let out = cli()
        .args(["run", "n=96", "p=4", "c=2", "steps=2", "--profile"])
        .output()
        .expect("launch");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let last = stdout.lines().last().unwrap();
    let doc = nbody_trace::Json::parse(last).expect("last line is not JSON");
    // Critical-path split: the three buckets exist and compute is real.
    let compute = doc.get("critical_compute_secs").unwrap().as_f64().unwrap();
    assert!(compute > 0.0, "{last}");
    assert!(doc.get("critical_comm_secs").unwrap().as_f64().unwrap() >= 0.0);
    assert!(doc.get("critical_blocked_secs").unwrap().as_f64().unwrap() >= 0.0);
    // Per-phase imbalance factors: max/mean >= 1 for every reported phase.
    let imb = doc.get("imbalance").unwrap();
    for phase in ["shift", "other"] {
        let f = imb.get(phase).unwrap().as_f64().unwrap();
        assert!(f >= 1.0, "phase {phase}: {last}");
    }
}

#[test]
fn scale_rows_carry_imbalance_and_critical_comm_fraction() {
    let out = cli().args(["scale", "n=4096"]).output().expect("launch");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let last = stdout.lines().last().unwrap();
    let doc = nbody_trace::Json::parse(last).unwrap();
    for row in doc.get("rows").unwrap().as_array().unwrap() {
        let n_c = row.get("efficiency").unwrap().as_array().unwrap().len();
        let imb = row.get("imbalance").unwrap().as_array().unwrap();
        let frac = row.get("critical_comm_frac").unwrap().as_array().unwrap();
        assert_eq!(imb.len(), n_c);
        assert_eq!(frac.len(), n_c);
        // c = 1 is always simulated: imbalance >= 1 (up to summation
        // noise — the simulated ring is perfectly balanced), comm share
        // in (0, 1].
        assert!(imb[0].as_f64().unwrap() >= 1.0 - 1e-9, "{last}");
        let f = frac[0].as_f64().unwrap();
        assert!(f > 0.0 && f <= 1.0, "{last}");
    }
}

#[test]
fn regress_gates_against_history_and_records() {
    let dir = std::env::temp_dir().join("ca_nbody_cli_regress_test");
    std::fs::remove_dir_all(&dir).ok();
    let (trace, _) = traced_run(&dir, 4, 2);
    let hist = dir.join("history").display().to_string();
    let common = [
        "n=128".to_string(),
        "c=2".to_string(),
        "kernel=allpairs".to_string(),
        format!("--history={hist}"),
    ];

    // First run: no history yet — passes and seeds the store.
    let out = cli()
        .args(["regress", &trace])
        .args(&common)
        .arg("--record")
        .output()
        .expect("launch");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("no matching history"), "{stdout}");
    let store = format!("{hist}/allpairs.jsonl");
    assert!(std::fs::metadata(&store).is_ok(), "store not created");

    // Second run against the honest history: within tolerance, exit 0.
    let out = cli()
        .args(["regress", &trace])
        .args(&common)
        .args(["tolerance=2.0"])
        .output()
        .expect("launch");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("PASS"), "{stdout}");
    let last = stdout.lines().last().unwrap();
    let doc = nbody_trace::Json::parse(last).unwrap();
    assert_eq!(doc.get("verdict").unwrap().as_str(), Some("pass"));
    assert_eq!(doc.get("matched").unwrap().as_f64(), Some(1.0));

    // Doctor the stored entry to be 2x faster than physically possible:
    // the live run now exceeds the tolerance and the gate trips.
    let body = std::fs::read_to_string(&store).unwrap();
    let entry = nbody_trace::Json::parse(body.lines().next().unwrap()).unwrap();
    let wall = entry.get("wall_secs").unwrap().as_f64().unwrap();
    let doctored = body.replace(
        &format!("\"wall_secs\":{wall}"),
        &format!("\"wall_secs\":{}", wall / 8.0),
    );
    assert_ne!(body, doctored, "doctoring must change the entry");
    std::fs::write(&store, doctored).unwrap();
    let out = cli()
        .args(["regress", &trace])
        .args(&common)
        .args(["tolerance=2.0"])
        .output()
        .expect("launch");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!out.status.success(), "doctored history must trip the gate: {stdout}");
    assert!(stdout.contains("FAIL"), "{stdout}");
    let last = stdout.lines().last().unwrap();
    let doc = nbody_trace::Json::parse(last).unwrap();
    assert_eq!(doc.get("verdict").unwrap().as_str(), Some("regression"));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("REGRESSION"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // A different configuration key never matches the doctored entry.
    let out = cli()
        .args(["regress", &trace, "n=999", "c=2", "kernel=allpairs"])
        .arg(format!("--history={hist}"))
        .output()
        .expect("launch");
    assert!(out.status.success());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn regress_rejects_corrupt_history_with_line_diagnostic() {
    let dir = std::env::temp_dir().join("ca_nbody_cli_regress_bad_test");
    std::fs::remove_dir_all(&dir).ok();
    let (trace, _) = traced_run(&dir, 4, 2);
    let hist_dir = dir.join("history");
    std::fs::create_dir_all(&hist_dir).unwrap();
    std::fs::write(hist_dir.join("allpairs.jsonl"), "{\"n\": 128,\n").unwrap();
    let out = cli()
        .args([
            "regress",
            &trace,
            "n=128",
            "c=2",
            &format!("--history={}", hist_dir.display()),
        ])
        .output()
        .expect("launch");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line 1"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn calibrate_writes_machine_ceilings_json() {
    let dir = std::env::temp_dir().join("ca_nbody_cli_calibrate_test");
    std::fs::remove_dir_all(&dir).ok();
    let path = dir.join("machine_calibration.json");
    let out = cli()
        .args([
            "calibrate",
            "seed=7",
            &format!("--out={}", path.display()),
        ])
        .output()
        .expect("launch");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    let last = stdout.lines().last().unwrap();
    let doc = nbody_trace::Json::parse(last).expect("last line is not JSON");
    assert_eq!(doc.get("cmd").unwrap().as_str(), Some("calibrate"));
    assert_eq!(doc.get("seed").unwrap().as_f64(), Some(7.0));
    assert!(doc.get("peak_gflops").unwrap().as_f64().unwrap() > 0.0);
    // The file parses back to the same positive ceilings.
    let text = std::fs::read_to_string(&path).expect("calibration not written");
    let saved = nbody_trace::Json::parse(&text).unwrap();
    assert!(saved.get("peak_gflops").unwrap().as_f64().unwrap() > 0.0);
    assert!(saved.get("mem_bw_gbytes").unwrap().as_f64().unwrap() > 0.0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn audit_renders_roofline_and_gates_against_baseline() {
    let dir = std::env::temp_dir().join("ca_nbody_cli_roofline_test");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    // A hand-written calibration keeps the test deterministic and fast.
    let cal = dir.join("cal.json");
    std::fs::write(
        &cal,
        r#"{"peak_gflops": 1.0, "mem_bw_gbytes": 10.0, "seed": 42, "fma_iters": 0, "stream_bytes": 0}"#,
    )
    .unwrap();
    let roofline_json = dir.join("roofline.json");
    let base = |args: &[String]| {
        let mut v = vec![
            "audit".to_string(),
            "n=256".to_string(),
            "p=4".to_string(),
            "steps=1".to_string(),
            "c=2".to_string(),
            format!("--calibration={}", cal.display()),
        ];
        v.extend_from_slice(args);
        cli().args(&v).output().expect("launch")
    };

    // An achievable floor passes and writes the roofline report.
    let floor = dir.join("floor_ok.json");
    std::fs::write(&floor, r#"{"min_pct_of_roofline": 0.0, "tolerance_pct": 0.0}"#).unwrap();
    let out = base(&[
        format!("--roofline-baseline={}", floor.display()),
        format!("--roofline-out={}", roofline_json.display()),
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("compute roofline"), "{stdout}");
    assert!(stdout.contains("roofline gate"), "{stdout}");
    let last = stdout.lines().last().unwrap();
    let doc = nbody_trace::Json::parse(last).unwrap();
    assert_eq!(doc.get("roofline_pass").unwrap().as_bool(), Some(true));
    assert!(doc.get("roofline_best_pct").unwrap().as_f64().unwrap() > 0.0);
    let report = nbody_trace::Json::parse(
        &std::fs::read_to_string(&roofline_json).expect("roofline report not written"),
    )
    .unwrap();
    let kernels = report.as_array().unwrap();
    assert!(!kernels.is_empty());
    assert!(kernels[0].get("best_pct_of_roofline").unwrap().as_f64().unwrap() > 0.0);

    // An impossible floor fails the audit with a roofline diagnostic.
    let floor_bad = dir.join("floor_bad.json");
    std::fs::write(
        &floor_bad,
        r#"{"min_pct_of_roofline": 1000000.0, "tolerance_pct": 0.0}"#,
    )
    .unwrap();
    let out = base(&[format!("--roofline-baseline={}", floor_bad.display())]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("roofline gate"), "{stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let last = stdout.lines().last().unwrap();
    let doc = nbody_trace::Json::parse(last).unwrap();
    assert_eq!(doc.get("roofline_pass").unwrap().as_bool(), Some(false));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn chaos_metrics_flag_accumulates_the_whole_sweep() {
    let dir = std::env::temp_dir().join("ca_nbody_cli_chaos_metrics_test");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("sweep.json");
    let out = cli()
        .args([
            "chaos",
            "n=96",
            "p=4",
            "c=2",
            "steps=1",
            &format!("--metrics={}", path.display()),
        ])
        .output()
        .expect("launch");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    let text = std::fs::read_to_string(&path).expect("sweep metrics not written");
    let doc = nbody_trace::Json::parse(&text).unwrap();
    let snap = nbody_metrics::MetricsSnapshot::from_json(&doc).unwrap();
    assert_eq!(snap.ranks.len(), 4);
    // The accumulated snapshot spans the whole campaign: kills fired and
    // every run's kernel work is in the compute counters.
    assert!(snap.sum_counter("fault_injected_kill", None) > 0);
    assert!(snap.sum_counter("compute_flops", None) > 0);
    assert!(snap.sum_counter("compute_nanos", None) > 0);
    let last = stdout.lines().last().unwrap();
    let summary = nbody_trace::Json::parse(last).unwrap();
    assert!(summary.get("sweep_compute_flops").unwrap().as_f64().unwrap() > 0.0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn scale_metrics_flag_synthesizes_a_snapshot_from_the_model() {
    let dir = std::env::temp_dir().join("ca_nbody_cli_scale_metrics_test");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("scale.prom");
    let out = cli()
        .args([
            "scale",
            "n=4096",
            "metrics-p=64",
            &format!("--metrics={}", path.display()),
        ])
        .output()
        .expect("launch");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    let text = std::fs::read_to_string(&path).expect("metrics not written");
    let snap = nbody_metrics::MetricsSnapshot::parse_prometheus(&text).unwrap();
    assert_eq!(snap.ranks.len(), 64);
    // Comm counters come from the schedule's operation counts, compute
    // counters from the DES model — both sides must be populated.
    let sends: u64 = nbody_trace::ALL_PHASES
        .iter()
        .map(|ph| snap.sum_counter("comm_send_messages", Some(*ph)))
        .sum();
    assert!(sends > 0, "{text}");
    assert!(snap.sum_counter("compute_interactions", None) > 0);
    assert!(snap.sum_counter("compute_flops", None) > 0);
    assert!(snap.sum_counter("compute_nanos", None) > 0);
    let last = stdout.lines().last().unwrap();
    let summary = nbody_trace::Json::parse(last).unwrap();
    assert_eq!(summary.get("metrics_p").unwrap().as_f64(), Some(64.0));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn record_timeline_writes_bundle_and_analyze_reports_drift() {
    let dir = std::env::temp_dir().join("ca_nbody_cli_timeline_test");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let tl_path = dir.join("timeline.json").display().to_string();
    let trace = dir.join("trace.jsonl").display().to_string();
    let out = cli()
        .args([
            "run",
            "n=128",
            "p=4",
            "c=2",
            "steps=4",
            &format!("--trace={trace}"),
            &format!("--record-timeline={tl_path}"),
        ])
        .output()
        .expect("launch");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("timeline written to"), "{stdout}");
    let last = stdout.lines().last().unwrap();
    let doc = nbody_trace::Json::parse(last).unwrap();
    assert!(doc.get("timeline_samples").unwrap().as_f64().unwrap() > 0.0, "{last}");

    // The bundle parses back: every rank sampled every step.
    let text = std::fs::read_to_string(&tl_path).expect("timeline not written");
    let tl = nbody_comm::RunTimeline::parse(&text).expect("invalid timeline bundle");
    assert!(!tl.is_postmortem());
    assert_eq!(tl.ranks.len(), 4);
    for r in &tl.ranks {
        assert_eq!(r.samples.len(), 4, "rank {} samples", r.rank);
    }
    // Team leaders own the particles; non-leader replica rows own none.
    assert!(
        tl.ranks
            .iter()
            .any(|r| r.samples.iter().any(|s| s.particles > 0)),
        "at least the leaders' samples carry particle counts"
    );

    // Timeline-only analyze invocation: drift table, quiet on a short
    // stationary run.
    let out = cli()
        .args(["analyze", &format!("--timeline={tl_path}")])
        .output()
        .expect("launch");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("timeline drift"), "{stdout}");
    assert!(stdout.contains("no drift flagged"), "{stdout}");

    // Combined trace + timeline analyze: both sections in one report.
    let out = cli()
        .args(["analyze", &trace, &format!("--timeline={tl_path}")])
        .output()
        .expect("launch");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("stragglers"), "{stdout}");
    assert!(stdout.contains("timeline drift"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn gravity_under_a_cutoff_method_records_a_tunable_drift_report() {
    // The EXPERIMENTS collapse recipe needs gravity under a spatial
    // decomposition (law=gravity + ca-cutoff-1d) and the analyze drift
    // knobs; guard both ends of that pipeline.
    let dir = std::env::temp_dir().join("ca_nbody_cli_gravity_cutoff_test");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let tl_path = dir.join("timeline.json").display().to_string();
    let out = cli()
        .args([
            "run",
            "method=ca-cutoff-1d",
            "law=gravity",
            "n=128",
            "p=4",
            "c=2",
            "steps=3",
            &format!("--record-timeline={tl_path}"),
        ])
        .output()
        .expect("launch");
    assert!(
        out.status.success(),
        "{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let out = cli()
        .args([
            "analyze",
            &format!("--timeline={tl_path}"),
            "--drift-window=32",
            "--drift-nsigma=3",
        ])
        .output()
        .expect("launch");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("window 32, 3.0 sigma"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unrecoverable_fault_dumps_parseable_postmortem_bundle() {
    let dir = std::env::temp_dir().join("ca_nbody_cli_postmortem_test");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let tl_path = dir.join("postmortem.json").display().to_string();
    // Killing every rank leaves nothing to shrink onto: the run must end
    // Unrecoverable and the flight recorder must dump a postmortem bundle
    // on the way out.
    let out = cli()
        .args([
            "run", "n=64", "p=4", "c=1", "steps=1",
            "--faults=kill:0@1,kill:1@1,kill:2@1,kill:3@1",
            "fault-timeout-ms=300",
            &format!("--record-timeline={tl_path}"),
        ])
        .output()
        .expect("launch");
    assert!(!out.status.success(), "the failed run must keep its nonzero exit");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("postmortem bundle written to"), "{stderr}");

    let text = std::fs::read_to_string(&tl_path).expect("postmortem not written");
    let tl = nbody_comm::RunTimeline::parse(&text).expect("invalid postmortem bundle");
    assert!(tl.is_postmortem(), "bundle must carry the failure reason");
    assert!(
        tl.failure.as_deref().unwrap_or("").contains("unrecoverable"),
        "{:?}",
        tl.failure
    );
    // The flight ring recorded the death spiral: fault injection, recovery
    // attempts, and the terminal verdict.
    let kinds: Vec<&str> = tl
        .ranks
        .iter()
        .flat_map(|r| r.events.iter().map(|e| e.kind.label()))
        .collect();
    assert!(kinds.contains(&"fault_injected"), "{kinds:?}");
    assert!(kinds.contains(&"unrecoverable"), "{kinds:?}");

    // The postmortem subcommand renders the bundle as text.
    let out = cli()
        .args(["postmortem", &tl_path])
        .output()
        .expect("launch");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("FAILED"), "{stdout}");
    assert!(stdout.contains("unrecoverable"), "{stdout}");
    assert!(stdout.contains("rank"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn chaos_postmortem_flag_dumps_bundle_for_the_unrecoverable_kill() {
    let dir = std::env::temp_dir().join("ca_nbody_cli_chaos_postmortem_test");
    std::fs::remove_dir_all(&dir).ok();
    let pm_dir = dir.join("postmortems").display().to_string();
    let out = cli()
        .args([
            "chaos", "n=64", "p=4", "c=2", "steps=1",
            "fault-timeout-ms=250",
            &format!("--postmortem={pm_dir}"),
        ])
        .output()
        .expect("launch");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let last = stdout.lines().last().unwrap();
    let doc = nbody_trace::Json::parse(last).unwrap();
    let bundles = doc.get("postmortem_bundles").unwrap().as_array().unwrap();
    // The sweep recovers or shrinks everywhere; only the deliberate
    // total-loss kill ends Unrecoverable and leaves a bundle.
    assert_eq!(bundles.len(), 1, "{last}");
    assert_eq!(bundles[0].as_str(), Some("total_loss_unrecoverable"));
    let bundle_path = format!("{pm_dir}/total_loss_unrecoverable.json");
    let text = std::fs::read_to_string(&bundle_path).expect("bundle not written");
    let tl = nbody_comm::RunTimeline::parse(&text).expect("invalid bundle");
    assert!(tl.is_postmortem());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpointed_run_crashes_on_cue_and_resumes_bit_identically() {
    let dir = std::env::temp_dir().join("ca_nbody_cli_ckpt_resume_test");
    std::fs::remove_dir_all(&dir).ok();
    let common = ["n=64", "p=4", "c=2", "steps=6"];

    // The reference: the same run, uninterrupted, no checkpoint sink.
    let out = cli().arg("run").args(common).output().expect("launch");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let doc = nbody_trace::Json::parse(stdout.lines().last().unwrap()).unwrap();
    let want_energy = doc.get("kinetic_energy").unwrap().as_f64().unwrap();

    // Crash on cue: rank 0 hard-exits (code 137) right after the step-4
    // bundle is durably on disk. Steps 2 and 4 must both have been
    // persisted by then; no later checkpoint may exist.
    let out = cli()
        .arg("run")
        .args(common)
        .args([
            &format!("--checkpoint-dir={}", dir.display()),
            "--checkpoint-every=2",
            "--crash-at-step=4",
        ])
        .output()
        .expect("launch");
    assert_eq!(
        out.status.code(),
        Some(137),
        "crash-at-step must exit 137: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    for step in [2, 4] {
        let path = dir.join(format!("ckpt-{step:08}.json"));
        assert!(path.is_file(), "missing durable bundle {}", path.display());
    }
    assert!(!dir.join("ckpt-00000006.json").exists());

    // Resume from the newest bundle and finish the remaining steps: the
    // final state must be bit-identical to the uninterrupted run.
    let out = cli()
        .arg("run")
        .args(common)
        .arg(format!("--resume={}", dir.display()))
        .output()
        .expect("launch");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = nbody_trace::Json::parse(stdout.lines().last().unwrap()).unwrap();
    assert_eq!(doc.get("resumed_from_step").unwrap().as_f64(), Some(4.0));
    let got_energy = doc.get("kinetic_energy").unwrap().as_f64().unwrap();
    assert_eq!(
        got_energy, want_energy,
        "resumed trajectory must match the uninterrupted run exactly"
    );
    // Resuming keeps checkpointing into the same directory: the final
    // step lands a new bundle.
    assert!(
        dir.join("ckpt-00000006.json").is_file(),
        "resumed run must keep persisting on the same cadence"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_rejects_mismatched_fingerprint_and_empty_dir() {
    let dir = std::env::temp_dir().join("ca_nbody_cli_ckpt_reject_test");
    std::fs::remove_dir_all(&dir).ok();

    // No checkpoint in the directory: a clear one-line error.
    std::fs::create_dir_all(&dir).unwrap();
    let out = cli()
        .args(["run", "n=64", "p=4", "c=2", "steps=2"])
        .arg(format!("--resume={}", dir.display()))
        .output()
        .expect("launch");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot resume"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");

    // Seed a real checkpoint, then try to resume a different run shape:
    // the fingerprint gate must refuse rather than silently continue.
    let out = cli()
        .args([
            "run", "n=64", "p=4", "c=2", "steps=2",
            &format!("--checkpoint-dir={}", dir.display()),
        ])
        .output()
        .expect("launch");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = cli()
        .args(["run", "n=128", "p=4", "c=2", "steps=2"])
        .arg(format!("--resume={}", dir.display()))
        .output()
        .expect("launch");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("resume rejected"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn chaos_multi_kill_and_soak_subcommands_pass() {
    // Multi-fault chaos: three concurrent same-step kills across distinct
    // columns recover without shrinking, and the forced whole-column kill
    // exercises the shrink path (shrinks > 0 in the summary).
    let out = cli()
        .args([
            "chaos", "n=64", "p=8", "c=2", "steps=1",
            "--kills=3", "fault-timeout-ms=250",
        ])
        .output()
        .expect("launch");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = nbody_trace::Json::parse(stdout.lines().last().unwrap()).unwrap();
    assert!(
        matches!(doc.get("pass"), Some(nbody_trace::Json::Bool(true))),
        "{stdout}"
    );
    assert_eq!(doc.get("kills").unwrap().as_f64(), Some(3.0));
    assert!(doc.get("shrinks").unwrap().as_f64().unwrap() > 0.0, "{stdout}");

    // A short randomized soak: seeded fault schedules, so any failure
    // here is reproducible from the printed seed.
    let out = cli()
        .args([
            "soak", "n=64", "p=8", "c=2", "steps=1",
            "seconds=3", "events=2", "fault-timeout-ms=250",
        ])
        .output()
        .expect("launch");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = nbody_trace::Json::parse(stdout.lines().last().unwrap()).unwrap();
    assert_eq!(doc.get("cmd").unwrap().as_str(), Some("soak"));
    assert!(
        matches!(doc.get("pass"), Some(nbody_trace::Json::Bool(true))),
        "{stdout}"
    );
    assert!(doc.get("runs").unwrap().as_f64().unwrap() > 0.0, "{stdout}");
    assert_eq!(doc.get("failures").unwrap().as_f64(), Some(0.0));
}

#[test]
fn malformed_durability_env_overrides_are_startup_errors() {
    for (var, bad) in [
        ("NBODY_CHECKPOINT_EVERY", "0"),
        ("NBODY_RETRY_TIMEOUT_MS", "soon"),
        ("NBODY_RETRY_BACKOFF", "0.5"),
        ("NBODY_RETRY_JITTER", "1.5"),
    ] {
        let out = cli()
            .args(["run", "n=32", "p=2", "c=1", "steps=1"])
            .env(var, bad)
            .output()
            .expect("launch");
        assert_eq!(
            out.status.code(),
            Some(2),
            "{var}={bad} must fail startup validation"
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(var), "{stderr}");
        assert!(!stderr.contains("panicked"), "{stderr}");
    }
    // Valid overrides still run normally.
    let out = cli()
        .args(["run", "n=32", "p=2", "c=1", "steps=1"])
        .env("NBODY_RETRY_TIMEOUT_MS", "2000")
        .env("NBODY_RETRY_BACKOFF", "1.5")
        .env("NBODY_RETRY_JITTER", "0.2")
        .output()
        .expect("launch");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn malformed_recv_timeout_env_is_a_startup_error() {
    let out = cli()
        .args(["run", "n=32", "p=2", "c=1", "steps=1"])
        .env("NBODY_RECV_TIMEOUT_SECS", "banana")
        .output()
        .expect("launch");
    assert_eq!(out.status.code(), Some(2), "startup validation exits 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("NBODY_RECV_TIMEOUT_SECS"), "{stderr}");
    assert!(stderr.contains("banana"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");

    // A valid override still runs normally.
    let out = cli()
        .args(["run", "n=32", "p=2", "c=1", "steps=1"])
        .env("NBODY_RECV_TIMEOUT_SECS", "90")
        .output()
        .expect("launch");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn serve_metrics_endpoint_scrapes_compute_gauges_over_http() {
    use std::io::{BufRead, BufReader, Read, Write};

    let dir = std::env::temp_dir().join("ca_nbody_cli_serve_test");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let tl_path = dir.join("timeline.json").display().to_string();
    let mut child = cli()
        .args([
            "run",
            "n=128",
            "p=4",
            "c=2",
            "steps=2",
            "--serve-metrics=127.0.0.1:0",
            "serve-metrics-hold-ms=30000",
            &format!("--record-timeline={tl_path}"),
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("launch");

    // stdout is line-buffered; wait for the post-run "published" line and
    // take the endpoint address from it.
    let mut reader = BufReader::new(child.stdout.take().unwrap());
    let mut addr = None;
    let mut line = String::new();
    while reader.read_line(&mut line).unwrap_or(0) > 0 {
        if let Some(rest) = line.split("published at http://").nth(1) {
            addr = rest.split("/metrics").next().map(str::to_string);
            break;
        }
        line.clear();
    }
    let addr = match addr {
        Some(a) => a,
        None => {
            child.kill().ok();
            panic!("no 'metrics published' line on stdout");
        }
    };

    let scrape = |path: &str| -> String {
        let mut conn = std::net::TcpStream::connect(&addr).expect("connect to endpoint");
        conn.write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").as_bytes())
            .unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).unwrap();
        response
    };
    let metrics_response = scrape("/metrics");
    let timeseries_response = scrape("/timeseries");
    let dashboard_response = scrape("/dashboard");
    child.kill().ok();
    child.wait().ok();
    std::fs::remove_dir_all(&dir).ok();

    let (head, body) = metrics_response.split_once("\r\n\r\n").expect("no header split");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    assert!(head.contains("text/plain; version=0.0.4"), "{head}");
    // The scraped exposition parses back and carries the live compute
    // counters of the run that just finished.
    let snap = nbody_metrics::MetricsSnapshot::parse_prometheus(body).unwrap();
    assert_eq!(snap.ranks.len(), 4);
    assert!(snap.sum_counter("compute_flops", None) > 0, "{body}");
    assert!(snap.sum_counter("compute_interactions", None) > 0);
    assert!(snap.sum_counter("comm_send_messages", Some(nbody_trace::Phase::Shift)) > 0);

    // The published timeline serves as JSON at /timeseries ...
    let (head, body) = timeseries_response.split_once("\r\n\r\n").expect("no header split");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    assert!(head.contains("application/json"), "{head}");
    let tl = nbody_comm::RunTimeline::parse(body).expect("invalid /timeseries body");
    assert_eq!(tl.ranks.len(), 4, "{body}");
    assert!(tl.ranks.iter().all(|r| r.samples.len() == 2));

    // ... and as the self-contained HTML dashboard at /dashboard.
    let (head, body) = dashboard_response.split_once("\r\n\r\n").expect("no header split");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    assert!(head.contains("text/html"), "{head}");
    assert!(body.starts_with("<!doctype html>"), "{body}");
    assert!(body.contains("<svg"), "dashboard carries sparklines");
}

#[test]
fn wire_probe_flag_writes_parseable_log_and_conformance_passes() {
    let dir = std::env::temp_dir().join("ca_nbody_cli_wire_test");
    std::fs::create_dir_all(&dir).unwrap();
    let wire = dir.join("wire.json").display().to_string();
    let out = cli()
        .args([
            "run",
            "n=48",
            "p=8",
            "c=2",
            "steps=3",
            &format!("--wire-probe={wire}"),
        ])
        .output()
        .expect("launch");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("wire probes written to"), "{stdout}");

    // The log parses back and the summary line reports its size.
    let log = nbody_comm::WireLog::parse(&std::fs::read_to_string(&wire).unwrap()).unwrap();
    assert_eq!(log.ranks.len(), 8);
    assert!(log.total_events() > 0);
    let last = stdout.lines().last().unwrap();
    let doc = nbody_trace::Json::parse(last).unwrap();
    assert_eq!(
        doc.get("wire_events").unwrap().as_f64(),
        Some(log.total_events() as f64)
    );
    assert_eq!(doc.get("wire_dropped_events").unwrap().as_f64(), Some(0.0));

    // A clean run conforms to the CA schedule: zero violations, and the
    // latency table renders populated channels via `analyze --wire`.
    let out = cli()
        .args(["conformance", &wire, "n=48", "p=8", "c=2", "steps=3"])
        .output()
        .expect("launch");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("no violations"), "{stdout}");
    assert!(stdout.contains("verdict: PASS"), "{stdout}");
    let doc = nbody_trace::Json::parse(stdout.lines().last().unwrap()).unwrap();
    assert_eq!(doc.get("verdict").unwrap().as_str(), Some("PASS"));
    assert_eq!(doc.get("unexplained").unwrap().as_f64(), Some(0.0));
    assert!(doc.get("expected_msgs").unwrap().as_f64().unwrap() > 0.0);

    let out = cli()
        .args(["analyze", &format!("--wire={wire}")])
        .output()
        .expect("launch");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("wire probes:"), "{stdout}");
    assert!(stdout.contains("matched pairs"), "{stdout}");
    assert!(stdout.contains("mean us"), "latency columns present: {stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn conformance_attributes_chaos_drops_and_fails_on_wrong_schedule() {
    let dir = std::env::temp_dir().join("ca_nbody_cli_wire_chaos_test");
    std::fs::create_dir_all(&dir).unwrap();
    let wire = dir.join("wire_chaos.json").display().to_string();
    let out = cli()
        .args([
            "run",
            "n=48",
            "p=8",
            "c=2",
            "steps=2",
            "--faults=drop:3@1",
            "fault-timeout-ms=250",
            &format!("--wire-probe={wire}"),
        ])
        .output()
        .expect("launch");
    assert!(
        out.status.success(),
        "{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );

    // Every discrepancy the injected drop causes is attributed to the
    // fault plan: zero unexplained, PASS verdict, exit 0.
    let out = cli()
        .args([
            "conformance",
            &wire,
            "n=48",
            "p=8",
            "c=2",
            "steps=2",
            "--faults=drop:3@1",
        ])
        .output()
        .expect("launch");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("verdict: PASS"), "{stdout}");
    let doc = nbody_trace::Json::parse(stdout.lines().last().unwrap()).unwrap();
    assert_eq!(doc.get("unexplained").unwrap().as_f64(), Some(0.0));
    assert!(
        doc.get("violations").unwrap().as_f64().unwrap() > 0.0,
        "the drop must actually perturb the schedule: {stdout}"
    );
    assert!(stdout.contains("fault_drop:rank3@step1"), "{stdout}");

    // The same log against the wrong schedule is a genuine FAIL with a
    // non-zero exit (the CI gate contract).
    let out = cli()
        .args(["conformance", &wire, "n=48", "p=8", "c=2", "steps=7"])
        .output()
        .expect("launch");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!out.status.success(), "{stdout}");
    assert!(stdout.contains("verdict: FAIL"), "{stdout}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("CONFORMANCE FAILED"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn conformance_rejects_bad_inputs_with_one_line_errors() {
    // Missing positional.
    let out = cli().arg("conformance").output().expect("launch");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));

    // Unreadable log.
    let out = cli()
        .args(["conformance", "/nonexistent/wire.json"])
        .output()
        .expect("launch");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));

    // A method with no schedule twin.
    let dir = std::env::temp_dir().join("ca_nbody_cli_wire_badmethod_test");
    std::fs::create_dir_all(&dir).unwrap();
    let wire = dir.join("wire.json").display().to_string();
    let out = cli()
        .args(["run", "n=32", "p=4", "c=1", "steps=1", &format!("--wire-probe={wire}")])
        .output()
        .expect("launch");
    assert!(out.status.success());
    let out = cli()
        .args(["conformance", &wire, "method=ring"])
        .output()
        .expect("launch");
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("no communication-schedule twin"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn audit_wire_flag_reports_observed_vs_predicted_counts() {
    let out = cli()
        .args(["audit", "n=256", "p=8", "steps=1", "c=2", "--wire"])
        .output()
        .expect("launch");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("wire messages (observed vs predicted"), "{stdout}");
    assert!(stdout.contains("skew"), "{stdout}");
    assert!(stdout.contains("shift"), "{stdout}");
    let doc = nbody_trace::Json::parse(stdout.lines().last().unwrap()).unwrap();
    let predicted = doc.get("wire_predicted_msgs").unwrap().as_f64().unwrap();
    let observed = doc.get("wire_observed_msgs").unwrap().as_f64().unwrap();
    assert!(predicted > 0.0);
    assert_eq!(predicted, observed, "audited run must match its schedule");
}

#[test]
fn cutoff_wire_probe_conforms_in_count_only_mode() {
    let dir = std::env::temp_dir().join("ca_nbody_cli_wire_cutoff_test");
    std::fs::create_dir_all(&dir).unwrap();
    let wire = dir.join("wire.json").display().to_string();
    let out = cli()
        .args([
            "run",
            "method=ca-cutoff-1d",
            "n=40",
            "p=8",
            "c=2",
            "steps=2",
            "cutoff=0.25",
            &format!("--wire-probe={wire}"),
        ])
        .output()
        .expect("launch");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = cli()
        .args([
            "conformance",
            &wire,
            "method=ca-cutoff-1d",
            "n=40",
            "p=8",
            "c=2",
            "steps=2",
            "cutoff=0.25",
        ])
        .output()
        .expect("launch");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("verdict: PASS"), "{stdout}");
    assert!(stdout.contains("ca-1d-cutoff"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn health_run_reports_gate_and_bundle_renders_verdict() {
    let dir = std::env::temp_dir().join("ca_nbody_cli_health_test");
    std::fs::create_dir_all(&dir).unwrap();
    let tl = dir.join("tl.json").display().to_string();
    let out = cli()
        .args([
            "run",
            "n=96",
            "p=8",
            "c=2",
            "steps=3",
            "--health",
            &format!("--record-timeline={tl}"),
        ])
        .output()
        .expect("launch");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("\"health_sentinel_events\":0"), "{stdout}");
    assert!(stdout.contains("\"health_gate\":\"pass\""), "{stdout}");

    // The bundle renders a clean verdict and exits zero.
    let out = cli().args(["health", &tl]).output().expect("launch");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains(": HEALTHY"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn injected_nan_aborts_with_blame_and_unhealthy_bundle() {
    let dir = std::env::temp_dir().join("ca_nbody_cli_health_nan_test");
    std::fs::create_dir_all(&dir).unwrap();
    let tl = dir.join("pm.json").display().to_string();
    let out = cli()
        .args([
            "run",
            "n=96",
            "p=8",
            "c=2",
            "steps=3",
            "--inject-nan=0@1",
            &format!("--record-timeline={tl}"),
        ])
        .output()
        .expect("launch");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success(), "NaN run must fail");
    assert!(
        stderr.contains("non-finite force at rank 0 step 1"),
        "{stderr}"
    );
    assert!(stderr.contains("postmortem bundle written"), "{stderr}");

    // The postmortem carries the blame and renders UNHEALTHY, exit 1.
    let out = cli().args(["health", &tl]).output().expect("launch");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!out.status.success(), "{stdout}");
    assert!(stdout.contains("UNHEALTHY"), "{stdout}");
    assert!(stdout.contains("rank 0 step 1"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_replica_detection_fails_the_default_health_gate() {
    // p=8, c=2: rank 4 is team 0's replica. The cross-check repairs it,
    // the run completes recovered, and the committed zero-mismatch
    // baseline turns the detection into a non-zero exit.
    let out = cli()
        .args(["run", "n=96", "p=8", "c=2", "steps=3", "--corrupt-replica=4@1"])
        .output()
        .expect("launch");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success(), "gate must fail\n{stdout}");
    assert!(
        stdout.contains("\"health_fingerprint_mismatches\":1"),
        "{stdout}"
    );
    assert!(stdout.contains("\"recovered\":true"), "{stdout}");
    assert!(stdout.contains("\"health_gate\":\"fail\""), "{stdout}");
    assert!(stderr.contains("HEALTH GATE"), "{stderr}");
}

#[test]
fn health_flags_reject_bad_specs_and_checkpoint_combination() {
    let out = cli()
        .args(["run", "n=32", "p=4", "c=2", "steps=2", "--inject-nan=zero@1"])
        .output()
        .expect("launch");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("bad rank"), "{stderr}");

    let out = cli()
        .args([
            "run",
            "n=32",
            "p=4",
            "c=2",
            "steps=2",
            "--health",
            "--checkpoint-dir=/tmp/ca_nbody_cli_health_ckpt",
        ])
        .output()
        .expect("launch");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("cannot be combined with --checkpoint-dir"),
        "{stderr}"
    );
}
