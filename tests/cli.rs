//! End-to-end tests of the `ca-nbody-repro` command-line interface.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ca-nbody-repro"))
}

#[test]
fn verify_subcommand_passes_for_default_config() {
    let out = cli()
        .args(["verify", "n=128", "p=4", "c=2", "steps=5"])
        .output()
        .expect("failed to launch CLI");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "stdout: {stdout}");
    assert!(stdout.contains("VERIFY OK"), "{stdout}");
}

#[test]
fn verify_covers_every_method() {
    for method in [
        "ca",
        "ring",
        "ring-symmetric",
        "allgather",
        "ca-cutoff-1d",
        "ca-cutoff-2d",
        "halo-1d",
        "halo-2d",
        "midpoint-1d",
        "midpoint-2d",
    ] {
        let out = cli()
            .args([
                "verify",
                &format!("method={method}"),
                "n=64",
                "p=4",
                "c=2",
                "steps=3",
            ])
            .output()
            .expect("failed to launch CLI");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            out.status.success() && stdout.contains("VERIFY OK"),
            "method {method}: {stdout}\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn force_decomp_requires_square_p() {
    let out = cli()
        .args(["verify", "method=force-decomp", "n=32", "p=9", "steps=2"])
        .output()
        .expect("failed to launch CLI");
    assert!(out.status.success());
}

#[test]
fn autotune_subcommand_reports_best_c() {
    let out = cli()
        .args(["autotune", "p=256", "n=2048"])
        .output()
        .expect("failed to launch CLI");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success());
    assert!(stdout.contains("<-- best"), "{stdout}");
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let out = cli().arg("frobnicate").output().expect("launch");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn unknown_method_fails() {
    let out = cli()
        .args(["run", "method=quantum"])
        .output()
        .expect("launch");
    assert!(!out.status.success());
}

#[test]
fn run_emits_single_line_json_summary() {
    let out = cli()
        .args(["run", "n=64", "p=4", "c=2", "steps=2"])
        .output()
        .expect("launch");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let last = stdout.lines().last().expect("no output");
    let doc = nbody_trace::Json::parse(last).expect("last line is not JSON");
    assert_eq!(doc.get("cmd").unwrap().as_str(), Some("run"));
    assert_eq!(doc.get("n").unwrap().as_f64(), Some(64.0));
    assert_eq!(doc.get("p").unwrap().as_f64(), Some(4.0));
    assert!(doc.get("elapsed_secs").unwrap().as_f64().unwrap() > 0.0);
}

#[test]
fn scale_emits_single_line_json_summary() {
    let out = cli()
        .args(["scale", "n=4096"])
        .output()
        .expect("launch");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let last = stdout.lines().last().expect("no output");
    let doc = nbody_trace::Json::parse(last).expect("last line is not JSON");
    assert_eq!(doc.get("cmd").unwrap().as_str(), Some("scale"));
    assert_eq!(doc.get("rows").unwrap().as_array().unwrap().len(), 5);
}

#[test]
fn trace_flag_writes_valid_chrome_trace() {
    let dir = std::env::temp_dir().join("ca_nbody_cli_trace_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.json");
    let out = cli()
        .args([
            "run",
            "method=ca-cutoff-1d",
            "n=256",
            "p=8",
            "c=2",
            "steps=3",
            &format!("--trace={}", path.display()),
        ])
        .output()
        .expect("launch");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&path).expect("trace file not written");
    let trace = nbody_trace::ExecutionTrace::parse(&text).expect("invalid trace");
    assert_eq!(trace.ranks, 8);
    // The cutoff method must leave a window for each phase it drives.
    use nbody_trace::Phase;
    let present = trace.phases_present();
    for want in [
        Phase::Broadcast,
        Phase::Shift,
        Phase::Reduce,
        Phase::Reassign,
        Phase::Other,
    ] {
        assert!(present.contains(&want), "missing {want:?} in {present:?}");
    }
    // Driver sections carry per-step spans.
    assert_eq!(trace.step_reports().len(), 3);
    std::fs::remove_file(&path).ok();
}

#[test]
fn report_subcommand_prints_breakdown_table() {
    let dir = std::env::temp_dir().join("ca_nbody_cli_report_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.jsonl");
    let run = cli()
        .args([
            "run",
            "n=128",
            "p=4",
            "c=2",
            "steps=2",
            &format!("--trace={}", path.display()),
        ])
        .output()
        .expect("launch");
    assert!(run.status.success());
    let out = cli()
        .args(["report", path.to_str().unwrap()])
        .output()
        .expect("launch");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("per-phase wall-clock"), "{stdout}");
    assert!(stdout.contains("shift"), "{stdout}");
    assert!(stdout.contains("phase sum"), "{stdout}");
    assert!(stdout.contains("per-step driver sections"), "{stdout}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn report_rejects_garbage_input() {
    let dir = std::env::temp_dir().join("ca_nbody_cli_badreport_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("not_a_trace.json");
    std::fs::write(&path, "hello, world").unwrap();
    let out = cli()
        .args(["report", path.to_str().unwrap()])
        .output()
        .expect("launch");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot parse"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn profile_flag_prints_breakdown_after_run() {
    let out = cli()
        .args(["run", "n=128", "p=4", "c=2", "steps=2", "--profile"])
        .output()
        .expect("launch");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("per-phase wall-clock"), "{stdout}");
    // The summary line carries the trace metadata too.
    let last = stdout.lines().last().unwrap();
    let doc = nbody_trace::Json::parse(last).unwrap();
    assert!(doc.get("trace_spans").unwrap().as_f64().unwrap() > 0.0);
}
