//! Physics invariants of distributed runs: the parallel decomposition must
//! not break conservation laws the serial integrator provides.

use ca_nbody::{run_distributed, Method, SimConfig};
use nbody_physics::{
    diagnostics, init, Boundary, Cutoff, Domain, Gravity, LennardJones, RepulsiveInverseSquare,
    SemiImplicitEuler, VelocityVerlet,
};

#[test]
fn momentum_conserved_open_boundary_symmetric_law() {
    let cfg = SimConfig {
        law: Gravity {
            g: 1e-3,
            softening: 0.05,
        },
        integrator: VelocityVerlet,
        domain: Domain::square(8.0),
        boundary: Boundary::Open,
        dt: 0.01,
        steps: 20,
    };
    let mut initial = init::uniform(48, &cfg.domain, 6);
    init::thermalize(&mut initial, 0.01, 7);
    assert!(diagnostics::total_momentum(&initial).norm() < 1e-12);

    for (method, p) in [
        (Method::CaAllPairs { c: 2 }, 8),
        (Method::ForceDecomposition, 9),
        (Method::ParticleRing, 6),
    ] {
        let result = run_distributed(&cfg, method, p, &initial);
        let mom = diagnostics::total_momentum(&result.particles).norm();
        assert!(mom < 1e-10, "{method:?}: momentum drift {mom:.3e}");
    }
}

#[test]
fn energy_stable_with_verlet_all_pairs() {
    let cfg = SimConfig {
        law: RepulsiveInverseSquare {
            strength: 1e-4,
            softening: 0.02,
        },
        integrator: VelocityVerlet,
        domain: Domain::unit(),
        boundary: Boundary::Reflective,
        dt: 0.002,
        steps: 100,
    };
    let mut initial = init::uniform(40, &cfg.domain, 9);
    init::thermalize(&mut initial, 1e-4, 10);
    let e0 = diagnostics::total_energy(&initial, &cfg.law, &cfg.domain, cfg.boundary);

    let result = run_distributed(&cfg, Method::CaAllPairs { c: 2 }, 8, &initial);
    let e1 = diagnostics::total_energy(&result.particles, &cfg.law, &cfg.domain, cfg.boundary);
    let rel = (e1 - e0).abs() / e0.abs().max(1e-12);
    assert!(rel < 0.05, "energy drift {rel:.3}: {e0} -> {e1}");
}

#[test]
fn energy_stable_with_verlet_lj_cutoff() {
    let domain = Domain::square(20.0);
    let cfg = SimConfig {
        law: Cutoff::new(LennardJones::default(), 2.5),
        integrator: VelocityVerlet,
        domain,
        boundary: Boundary::Reflective,
        dt: 0.002,
        steps: 50,
    };
    let mut initial = init::lattice(144, &domain);
    init::thermalize(&mut initial, 0.1, 3);
    let e0 = diagnostics::total_energy(&initial, &cfg.law, &domain, cfg.boundary);

    let result = run_distributed(&cfg, Method::Ca2dCutoff { c: 2 }, 8, &initial);
    let e1 = diagnostics::total_energy(&result.particles, &cfg.law, &domain, cfg.boundary);
    // Cutoff truncation makes energy only approximately conserved; the
    // check is against blow-up, not machine precision.
    let rel = (e1 - e0).abs() / e0.abs().max(1e-12);
    assert!(rel < 0.05, "LJ energy drift {rel:.3}: {e0} -> {e1}");
    assert!(result
        .particles
        .iter()
        .all(|p| p.pos.is_finite() && p.vel.is_finite()));
}

#[test]
fn particles_stay_inside_reflective_walls() {
    let cfg = SimConfig {
        law: RepulsiveInverseSquare {
            strength: 5e-3,
            softening: 1e-3,
        },
        integrator: SemiImplicitEuler,
        domain: Domain::unit(),
        boundary: Boundary::Reflective,
        dt: 0.02,
        steps: 60,
    };
    let mut initial = init::uniform(32, &cfg.domain, 4);
    init::thermalize(&mut initial, 0.05, 5);
    let result = run_distributed(&cfg, Method::CaAllPairs { c: 2 }, 8, &initial);
    for p in &result.particles {
        assert!(
            (0.0..=1.0).contains(&p.pos.x) && (0.0..=1.0).contains(&p.pos.y),
            "escaped: {:?}",
            p.pos
        );
        assert!(p.pos.is_finite() && p.vel.is_finite());
    }
}
