//! Physics invariants of distributed runs: the parallel decomposition must
//! not break conservation laws the serial integrator provides — including
//! across the fault paths (replica kill-and-recover, degraded shrink),
//! where the online health monitors measure exactly what was lost.

use ca_nbody::recovery::RetryPolicy;
use ca_nbody::{run_distributed, run_distributed_health, Method, SimConfig};
use nbody_comm::FaultPlan;
use nbody_physics::{
    diagnostics, init, Boundary, Cutoff, Domain, Gravity, LennardJones, RepulsiveInverseSquare,
    SemiImplicitEuler, VelocityVerlet,
};
use nbody_simhealth::HealthConfig;

#[test]
fn momentum_conserved_open_boundary_symmetric_law() {
    let cfg = SimConfig {
        law: Gravity {
            g: 1e-3,
            softening: 0.05,
        },
        integrator: VelocityVerlet,
        domain: Domain::square(8.0),
        boundary: Boundary::Open,
        dt: 0.01,
        steps: 20,
    };
    let mut initial = init::uniform(48, &cfg.domain, 6);
    init::thermalize(&mut initial, 0.01, 7);
    assert!(diagnostics::total_momentum(&initial).norm() < 1e-12);

    for (method, p) in [
        (Method::CaAllPairs { c: 2 }, 8),
        (Method::ForceDecomposition, 9),
        (Method::ParticleRing, 6),
    ] {
        let result = run_distributed(&cfg, method, p, &initial);
        let mom = diagnostics::total_momentum(&result.particles).norm();
        assert!(mom < 1e-10, "{method:?}: momentum drift {mom:.3e}");
    }
}

#[test]
fn energy_stable_with_verlet_all_pairs() {
    let cfg = SimConfig {
        law: RepulsiveInverseSquare {
            strength: 1e-4,
            softening: 0.02,
        },
        integrator: VelocityVerlet,
        domain: Domain::unit(),
        boundary: Boundary::Reflective,
        dt: 0.002,
        steps: 100,
    };
    let mut initial = init::uniform(40, &cfg.domain, 9);
    init::thermalize(&mut initial, 1e-4, 10);
    let e0 = diagnostics::total_energy(&initial, &cfg.law, &cfg.domain, cfg.boundary);

    let result = run_distributed(&cfg, Method::CaAllPairs { c: 2 }, 8, &initial);
    let e1 = diagnostics::total_energy(&result.particles, &cfg.law, &cfg.domain, cfg.boundary);
    let rel = (e1 - e0).abs() / e0.abs().max(1e-12);
    assert!(rel < 0.05, "energy drift {rel:.3}: {e0} -> {e1}");
}

#[test]
fn energy_stable_with_verlet_lj_cutoff() {
    let domain = Domain::square(20.0);
    let cfg = SimConfig {
        law: Cutoff::new(LennardJones::default(), 2.5),
        integrator: VelocityVerlet,
        domain,
        boundary: Boundary::Reflective,
        dt: 0.002,
        steps: 50,
    };
    let mut initial = init::lattice(144, &domain);
    init::thermalize(&mut initial, 0.1, 3);
    let e0 = diagnostics::total_energy(&initial, &cfg.law, &domain, cfg.boundary);

    let result = run_distributed(&cfg, Method::Ca2dCutoff { c: 2 }, 8, &initial);
    let e1 = diagnostics::total_energy(&result.particles, &cfg.law, &domain, cfg.boundary);
    // Cutoff truncation makes energy only approximately conserved; the
    // check is against blow-up, not machine precision.
    let rel = (e1 - e0).abs() / e0.abs().max(1e-12);
    assert!(rel < 0.05, "LJ energy drift {rel:.3}: {e0} -> {e1}");
    assert!(result
        .particles
        .iter()
        .all(|p| p.pos.is_finite() && p.vel.is_finite()));
}

#[test]
fn invariants_hold_across_kill_and_recover() {
    // Killing a replica mid-run must not perturb the physics: recovery
    // re-seeds the dead rank from its column's clean checkpoint, so the
    // recovered trajectory conserves momentum exactly and the online
    // health monitors agree the run stayed clean.
    let cfg = SimConfig {
        law: Gravity {
            g: 1e-3,
            softening: 0.05,
        },
        integrator: VelocityVerlet,
        domain: Domain::square(8.0),
        boundary: Boundary::Open,
        dt: 0.01,
        steps: 8,
    };
    let mut initial = init::uniform(48, &cfg.domain, 6);
    init::thermalize(&mut initial, 0.01, 7);
    let e0 = diagnostics::total_energy(&initial, &cfg.law, &cfg.domain, cfg.boundary);

    // p=8, c=2: ranks 4..8 are the replica row; rank 5 backs team 1.
    let plan = FaultPlan::kill(5, 1);
    let policy = RetryPolicy::with_timeout_ms(200);
    let (res, _tl) = run_distributed_health(
        &cfg,
        Method::CaAllPairs { c: 2 },
        8,
        &plan,
        &policy,
        &HealthConfig::enabled(),
        &initial,
    );
    let (run, report) = res.expect("replica kill recovers");
    assert!(run.recovered, "a kill must register as a recovery");
    assert_eq!(run.shrinks, 0, "replica kill must not shrink the world");
    assert_eq!(run.lost_particles, 0);

    let mom = diagnostics::total_momentum(&run.particles).norm();
    assert!(mom < 1e-10, "momentum drift across recovery: {mom:.3e}");
    let e1 = diagnostics::total_energy(&run.particles, &cfg.law, &cfg.domain, cfg.boundary);
    let rel = (e1 - e0).abs() / e0.abs().max(1e-12);
    assert!(rel < 0.05, "energy drift across recovery {rel:.3}: {e0} -> {e1}");

    // The monitors watched the same run and must concur.
    assert_eq!(report.sentinel_events, 0);
    assert!(report.steps_checked >= cfg.steps as u64);
    assert!(
        report.max_momentum_norm < 1e-10,
        "online momentum monitor saw a jump: {:.3e}",
        report.max_momentum_norm
    );
    assert!(
        report.max_rel_energy_drift < 0.05,
        "online energy monitor saw drift: {:.3e}",
        report.max_rel_energy_drift
    );
}

#[test]
fn shrink_lost_particles_match_momentum_jump() {
    // With c=1 a killed rank takes its whole team column down and the
    // world shrinks onto the survivors. The dropped particles carry
    // momentum away; the post-shrink total must equal the survivors'
    // initial momentum exactly, and the health monitor's measured
    // momentum jump must be consistent with the reported particle loss.
    let cfg = SimConfig {
        law: Gravity {
            g: 1e-3,
            softening: 0.05,
        },
        integrator: VelocityVerlet,
        domain: Domain::square(8.0),
        boundary: Boundary::Open,
        dt: 0.01,
        steps: 6,
    };
    let mut initial = init::uniform(48, &cfg.domain, 6);
    init::thermalize(&mut initial, 0.01, 7);
    assert!(diagnostics::total_momentum(&initial).norm() < 1e-12);

    // Kill team 1's only rank before any force exchange completes: the
    // lost particles leave with their initial momenta.
    let plan = FaultPlan::kill(1, 0);
    let policy = RetryPolicy::with_timeout_ms(200);
    let (res, _tl) = run_distributed_health(
        &cfg,
        Method::CaAllPairs { c: 1 },
        4,
        &plan,
        &policy,
        &HealthConfig::enabled(),
        &initial,
    );
    let (run, report) = res.expect("c=1 kill degrades but completes");
    assert_eq!(run.shrinks, 1);
    assert_eq!(run.final_ranks, 3);

    let final_ids: std::collections::HashSet<u64> =
        run.particles.iter().map(|p| p.id).collect();
    let lost: Vec<_> = initial
        .iter()
        .filter(|p| !final_ids.contains(&p.id))
        .cloned()
        .collect();
    assert_eq!(
        lost.len(),
        run.lost_particles,
        "reported loss must match the missing ids"
    );
    assert_eq!(run.lost_particles, 48 / 4, "one team column of particles");

    // Survivors interact only with each other after the shrink, so
    // their total momentum is frozen at its initial value — which is
    // exactly minus what the lost column took with it.
    let survivors: Vec<_> = initial
        .iter()
        .filter(|p| final_ids.contains(&p.id))
        .cloned()
        .collect();
    let expected = diagnostics::total_momentum(&survivors);
    let got = diagnostics::total_momentum(&run.particles);
    assert!(
        (got - expected).norm() < 1e-10,
        "post-shrink momentum {got:?} != surviving momentum {expected:?}"
    );
    let jump = diagnostics::total_momentum(&lost).norm();
    assert!(
        (report.max_momentum_norm - jump).abs() < 1e-10,
        "monitor momentum {:.3e} inconsistent with lost momentum {jump:.3e}",
        report.max_momentum_norm
    );
    assert_eq!(report.sentinel_events, 0);
}

#[test]
fn particles_stay_inside_reflective_walls() {
    let cfg = SimConfig {
        law: RepulsiveInverseSquare {
            strength: 5e-3,
            softening: 1e-3,
        },
        integrator: SemiImplicitEuler,
        domain: Domain::unit(),
        boundary: Boundary::Reflective,
        dt: 0.02,
        steps: 60,
    };
    let mut initial = init::uniform(32, &cfg.domain, 4);
    init::thermalize(&mut initial, 0.05, 5);
    let result = run_distributed(&cfg, Method::CaAllPairs { c: 2 }, 8, &initial);
    for p in &result.particles {
        assert!(
            (0.0..=1.0).contains(&p.pos.x) && (0.0..=1.0).contains(&p.pos.y),
            "escaped: {:?}",
            p.pos
        );
        assert!(p.pos.is_finite() && p.vel.is_finite());
    }
}
