//! Long-horizon stress tests: many timesteps, migrations across many
//! slabs, hot systems — the conditions that surface protocol drift,
//! reassignment races, and accumulator corruption.

use ca_nbody::{run_distributed, run_serial, Method, SimConfig};
use nbody_physics::{
    diagnostics, init, Boundary, Cutoff, Domain, RepulsiveInverseSquare, SemiImplicitEuler,
    VelocityVerlet,
};

/// Bound every blocking receive in this test binary: a protocol bug that
/// would deadlock now dies within seconds carrying a diagnostic
/// `CommError::Timeout` panic (who was waiting, for which tag, how long)
/// instead of stalling the whole suite on the 60 s default. The variable
/// is read once by the comm layer, so concurrent tests setting it again
/// is harmless.
fn bound_recv_timeouts() {
    std::env::set_var("NBODY_RECV_TIMEOUT_SECS", "20");
}

#[test]
fn fifty_step_cutoff_with_heavy_migration() {
    bound_recv_timeouts();
    // Hot particles cross many slab boundaries; the spatial decomposition
    // must track them without losing or duplicating anyone.
    let cfg = SimConfig {
        law: Cutoff::new(
            RepulsiveInverseSquare {
                strength: 1e-3,
                softening: 5e-3,
            },
            0.3,
        ),
        integrator: SemiImplicitEuler,
        domain: Domain::unit(),
        boundary: Boundary::Reflective,
        dt: 0.02,
        steps: 50,
    };
    let mut initial = init::uniform(48, &cfg.domain, 71);
    init::thermalize(&mut initial, 0.2, 72); // fast particles

    let want = run_serial(&cfg, &initial);
    for (method, p) in [
        (Method::Ca1dCutoff { c: 2 }, 8),
        (Method::Ca2dCutoff { c: 2 }, 8),
        (Method::Midpoint1d, 6),
    ] {
        let got = run_distributed(&cfg, method, p, &initial);
        assert_eq!(got.particles.len(), 48, "{method:?}");
        let dev = got
            .particles
            .iter()
            .zip(&want)
            .map(|(a, b)| (a.pos - b.pos).norm())
            .fold(0.0, f64::max);
        assert!(dev < 1e-7, "{method:?}: deviation {dev:.3e} after 50 steps");
    }
}

#[test]
fn hundred_step_all_pairs_remains_stable() {
    bound_recv_timeouts();
    let cfg = SimConfig {
        law: RepulsiveInverseSquare {
            strength: 5e-4,
            softening: 5e-3,
        },
        integrator: VelocityVerlet,
        domain: Domain::unit(),
        boundary: Boundary::Reflective,
        dt: 0.005,
        steps: 100,
    };
    let mut initial = init::uniform(64, &cfg.domain, 5);
    init::thermalize(&mut initial, 1e-3, 6);
    let e0 = diagnostics::total_energy(&initial, &cfg.law, &cfg.domain, cfg.boundary);

    let got = run_distributed(&cfg, Method::CaAllPairs { c: 2 }, 8, &initial);
    let e1 = diagnostics::total_energy(&got.particles, &cfg.law, &cfg.domain, cfg.boundary);
    assert!(
        (e1 - e0).abs() < 0.05 * e0.abs().max(1e-9),
        "energy {e0} -> {e1}"
    );
    for q in &got.particles {
        assert!(q.pos.is_finite() && q.vel.is_finite());
        assert!((0.0..=1.0).contains(&q.pos.x) && (0.0..=1.0).contains(&q.pos.y));
    }
    // Exactness after 100 steps, too.
    let want = run_serial(&cfg, &initial);
    let dev = got
        .particles
        .iter()
        .zip(&want)
        .map(|(a, b)| (a.pos - b.pos).norm())
        .fold(0.0, f64::max);
    assert!(dev < 1e-7, "deviation {dev:.3e}");
}

#[test]
fn repeated_runs_are_deterministic() {
    bound_recv_timeouts();
    // Thread scheduling must not leak into results: two identical
    // distributed runs produce bit-identical states.
    let cfg = SimConfig {
        law: Cutoff::new(RepulsiveInverseSquare::default(), 0.25),
        integrator: SemiImplicitEuler,
        domain: Domain::unit(),
        boundary: Boundary::Reflective,
        dt: 0.01,
        steps: 12,
    };
    let initial = init::uniform(40, &cfg.domain, 13);
    let a = run_distributed(&cfg, Method::Ca1dCutoff { c: 2 }, 8, &initial);
    let b = run_distributed(&cfg, Method::Ca1dCutoff { c: 2 }, 8, &initial);
    assert_eq!(a.particles, b.particles, "nondeterministic distributed run");
}

#[test]
fn clustered_load_survives_long_cutoff_run() {
    bound_recv_timeouts();
    // Extreme imbalance: everything in one corner, with reassignment
    // slowly spreading it out under repulsion.
    let cfg = SimConfig {
        law: Cutoff::new(
            RepulsiveInverseSquare {
                strength: 5e-3,
                softening: 5e-3,
            },
            0.2,
        ),
        integrator: SemiImplicitEuler,
        domain: Domain::unit(),
        boundary: Boundary::Reflective,
        dt: 0.02,
        steps: 40,
    };
    let initial = init::gaussian_clusters(56, &cfg.domain, 1, 0.03, 22);
    let want = run_serial(&cfg, &initial);
    let got = run_distributed(&cfg, Method::Ca1dCutoff { c: 2 }, 12, &initial);
    let dev = got
        .particles
        .iter()
        .zip(&want)
        .map(|(a, b)| (a.pos - b.pos).norm())
        .fold(0.0, f64::max);
    assert!(dev < 1e-7, "deviation {dev:.3e}");
}
